"""Long-read alignment with GACT tiling (Section 7.3 / contribution 5).

The device kernel is synthesised for a fixed 256-base maximum, but PacBio
reads are thousands of bases: the host tiles the alignment, running one
256x256 global alignment per tile and stitching the committed paths.
This script simulates a long noisy read, aligns it both ways, and shows
that tiling recovers a near-optimal alignment at a fraction of the
on-device memory.

Run:  python examples/long_read_tiling.py
"""

from repro import align, get_kernel
from repro.data.pbsim import simulate_read_pairs
from repro.reference.rescore import rescore_affine
from repro.tiling import tiled_align
from repro.tiling.gact import expected_tiles

READ_LENGTH = 2000
TILE, OVERLAP = 256, 64


def main() -> None:
    kernel = get_kernel("global_affine")
    params = kernel.default_params

    read = simulate_read_pairs(
        1, length=READ_LENGTH, error_rate=0.12, seed=42
    )[0]
    query, reference = read.query, read.reference
    print(f"read: {len(query)} bases vs reference window of {len(reference)}")

    tiled = tiled_align(
        kernel, query, reference, tile_size=TILE, overlap=OVERLAP, n_pe=32
    )
    tiled_score = rescore_affine(
        tiled.alignment, query, reference,
        params.match, params.mismatch, params.gap_open, params.gap_extend,
    )
    print(
        f"tiled    : {tiled.n_tiles} tiles "
        f"(closed-form predicts {expected_tiles(len(query), len(reference), TILE, OVERLAP)}), "
        f"score {tiled_score}, {tiled.total_cycles} device cycles"
    )

    # The unconstrained optimum needs a (2000+1)^2 traceback memory — fine
    # in simulation, impossible at this size on-device.
    direct = align(
        kernel, query, reference, n_pe=32,
        max_query_len=len(query), max_ref_len=len(reference),
    )
    print(f"direct   : score {direct.score}, {direct.cycles.total} device cycles")
    print(f"tiling recovers {100 * tiled_score / direct.score:.1f}% of the optimal score")

    tb_tiled = TILE * TILE
    tb_direct = (len(query)) * (len(reference))
    print(
        f"traceback cells on device: {tb_tiled} per tile vs {tb_direct} "
        f"direct ({tb_direct / tb_tiled:.0f}x more memory)"
    )


if __name__ == "__main__":
    main()
