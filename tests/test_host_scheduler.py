"""Tests for the host-side batch scheduler model."""

import pytest

from repro.host import AlignmentBatch, HostScheduler


def batch_of(cycles_list):
    batch = AlignmentBatch()
    for c in cycles_list:
        batch.add(c)
    return batch


class TestBatch:
    def test_add_and_len(self):
        batch = batch_of([100, 200])
        assert len(batch) == 2

    def test_invalid_job(self):
        with pytest.raises(ValueError):
            AlignmentBatch().add(0)


class TestScheduler:
    def test_empty_batch(self):
        result = HostScheduler(2, 2).run(AlignmentBatch())
        assert result.makespan_cycles == 0
        assert result.utilization == 0.0

    def test_single_job(self):
        sched = HostScheduler(1, 1, dispatch_cycles=10)
        result = sched.run(batch_of([1000]))
        assert result.makespan_cycles == 1010

    def test_equal_jobs_fill_blocks(self):
        sched = HostScheduler(n_k=2, n_b=2, dispatch_cycles=0)
        result = sched.run(batch_of([1000] * 4))
        assert result.makespan_cycles == 1000
        assert result.utilization == pytest.approx(1.0)

    def test_more_jobs_than_blocks_queue(self):
        sched = HostScheduler(n_k=1, n_b=2, dispatch_cycles=0)
        result = sched.run(batch_of([1000] * 4))
        assert result.makespan_cycles == 2000

    def test_dispatch_overhead_serialises_channel(self):
        sched = HostScheduler(n_k=1, n_b=8, dispatch_cycles=100)
        result = sched.run(batch_of([100] * 8))
        # dispatches are 100 cycles apart, so the last job starts at 800
        assert result.makespan_cycles == 900

    def test_channels_independent(self):
        one = HostScheduler(n_k=1, n_b=1, dispatch_cycles=0).run(
            batch_of([1000] * 8)
        )
        four = HostScheduler(n_k=4, n_b=1, dispatch_cycles=0).run(
            batch_of([1000] * 8)
        )
        assert four.makespan_cycles * 3 < one.makespan_cycles

    def test_throughput(self):
        sched = HostScheduler(n_k=2, n_b=2, dispatch_cycles=0)
        result = sched.run(batch_of([1000] * 4))
        assert result.throughput(250.0) == pytest.approx(4 * 250e6 / 1000)

    def test_throughput_invalid_freq(self):
        result = HostScheduler(1, 1).run(batch_of([10]))
        with pytest.raises(ValueError):
            result.throughput(0)

    def test_makespan_at_least_critical_job(self):
        sched = HostScheduler(n_k=2, n_b=4, dispatch_cycles=5)
        jobs = [100, 5000, 200, 300, 400]
        result = sched.run(batch_of(jobs))
        assert result.makespan_cycles >= 5000

    def test_utilization_bounded(self):
        sched = HostScheduler(n_k=3, n_b=2, dispatch_cycles=7)
        result = sched.run(batch_of([100, 900, 450, 222, 801, 333, 90]))
        assert 0.0 < result.utilization <= 1.0

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            HostScheduler(0, 1)
        with pytest.raises(ValueError):
            HostScheduler(1, 1, dispatch_cycles=-1)
