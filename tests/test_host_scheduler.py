"""Tests for the host-side batch scheduler model."""

import random

import pytest

from repro.host import AlignmentBatch, HostScheduler


def batch_of(cycles_list):
    batch = AlignmentBatch()
    for c in cycles_list:
        batch.add(c)
    return batch


class TestBatch:
    def test_add_and_len(self):
        batch = batch_of([100, 200])
        assert len(batch) == 2

    def test_invalid_job(self):
        with pytest.raises(ValueError):
            AlignmentBatch().add(0)


class TestScheduler:
    def test_empty_batch(self):
        result = HostScheduler(2, 2).run(AlignmentBatch())
        assert result.makespan_cycles == 0
        assert result.utilization == 0.0

    def test_single_job(self):
        sched = HostScheduler(1, 1, dispatch_cycles=10)
        result = sched.run(batch_of([1000]))
        assert result.makespan_cycles == 1010

    def test_equal_jobs_fill_blocks(self):
        sched = HostScheduler(n_k=2, n_b=2, dispatch_cycles=0)
        result = sched.run(batch_of([1000] * 4))
        assert result.makespan_cycles == 1000
        assert result.utilization == pytest.approx(1.0)

    def test_more_jobs_than_blocks_queue(self):
        sched = HostScheduler(n_k=1, n_b=2, dispatch_cycles=0)
        result = sched.run(batch_of([1000] * 4))
        assert result.makespan_cycles == 2000

    def test_dispatch_overhead_serialises_channel(self):
        sched = HostScheduler(n_k=1, n_b=8, dispatch_cycles=100)
        result = sched.run(batch_of([100] * 8))
        # dispatches are 100 cycles apart, so the last job starts at 800
        assert result.makespan_cycles == 900

    def test_channels_independent(self):
        one = HostScheduler(n_k=1, n_b=1, dispatch_cycles=0).run(
            batch_of([1000] * 8)
        )
        four = HostScheduler(n_k=4, n_b=1, dispatch_cycles=0).run(
            batch_of([1000] * 8)
        )
        assert four.makespan_cycles * 3 < one.makespan_cycles

    def test_throughput(self):
        sched = HostScheduler(n_k=2, n_b=2, dispatch_cycles=0)
        result = sched.run(batch_of([1000] * 4))
        assert result.throughput(250.0) == pytest.approx(4 * 250e6 / 1000)

    def test_throughput_invalid_freq(self):
        result = HostScheduler(1, 1).run(batch_of([10]))
        with pytest.raises(ValueError):
            result.throughput(0)

    def test_makespan_at_least_critical_job(self):
        sched = HostScheduler(n_k=2, n_b=4, dispatch_cycles=5)
        jobs = [100, 5000, 200, 300, 400]
        result = sched.run(batch_of(jobs))
        assert result.makespan_cycles >= 5000

    def test_utilization_bounded(self):
        sched = HostScheduler(n_k=3, n_b=2, dispatch_cycles=7)
        result = sched.run(batch_of([100, 900, 450, 222, 801, 333, 90]))
        assert 0.0 < result.utilization <= 1.0

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            HostScheduler(0, 1)
        with pytest.raises(ValueError):
            HostScheduler(1, 1, dispatch_cycles=-1)


def random_batches(seed, count=25):
    """Seeded random job batches spanning sizes and cost skews."""
    rng = random.Random(seed)
    batches = []
    for _ in range(count):
        n_jobs = rng.randint(1, 60)
        scale = rng.choice([10, 1_000, 100_000])
        batches.append(batch_of([
            rng.randint(1, scale) for _ in range(n_jobs)
        ]))
    return batches


class TestSchedulerProperties:
    """Seeded property tests over randomized batches (no hypothesis)."""

    @pytest.mark.parametrize("seed", range(5))
    def test_makespan_at_least_max_job_cycles(self, seed):
        """No schedule finishes before its longest job could."""
        for batch in random_batches(seed):
            for n_k, n_b in ((1, 1), (2, 3), (4, 4)):
                result = HostScheduler(n_k, n_b, dispatch_cycles=16).run(batch)
                assert result.makespan_cycles >= max(batch.job_cycles)

    @pytest.mark.parametrize("seed", range(5))
    def test_utilization_bounded_by_one(self, seed):
        """Blocks cannot be more than fully busy."""
        for batch in random_batches(seed):
            for n_k, n_b in ((1, 1), (2, 2), (3, 5)):
                result = HostScheduler(n_k, n_b, dispatch_cycles=7).run(batch)
                assert 0.0 < result.utilization <= 1.0

    @pytest.mark.parametrize("seed", range(5))
    def test_makespan_monotone_non_increasing_in_n_b(self, seed):
        """Adding blocks to every channel never slows a batch down."""
        for batch in random_batches(seed, count=10):
            for n_k in (1, 3):
                makespans = [
                    HostScheduler(n_k, n_b, dispatch_cycles=32)
                    .run(batch).makespan_cycles
                    for n_b in (1, 2, 4, 8)
                ]
                assert all(
                    a >= b for a, b in zip(makespans, makespans[1:])
                ), (n_k, makespans)

    @pytest.mark.parametrize("seed", range(3))
    def test_dispatch_overhead_dominates_many_tiny_jobs(self, seed):
        """For tiny jobs the channel enqueue serializes the schedule:
        the makespan approaches n_jobs_per_channel * dispatch_cycles and
        extra blocks stop helping."""
        rng = random.Random(seed)
        dispatch = 500
        n_jobs = 64
        batch = batch_of([rng.randint(1, 5) for _ in range(n_jobs)])
        narrow = HostScheduler(1, 1, dispatch_cycles=dispatch).run(batch)
        wide = HostScheduler(1, 16, dispatch_cycles=dispatch).run(batch)
        # Dispatch floor: every job's enqueue is serialized on the channel.
        assert wide.makespan_cycles >= n_jobs * dispatch
        # Blocks beyond the first buy almost nothing (< 2% improvement).
        assert wide.makespan_cycles >= 0.98 * narrow.makespan_cycles
