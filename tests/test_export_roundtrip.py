"""Round-trip tests for linked-design JSON serialization (synth/export).

The device pool can be described by an exported linked design; this
pins that export → JSON → re-link reproduces the design exactly.
"""

import json

import pytest

from repro.kernels import get_kernel
from repro.synth.device import ALVEO_U50
from repro.synth.export import (
    linked_design_from_dict,
    linked_design_from_json,
    linked_design_to_dict,
    linked_design_to_json,
)
from repro.synth.linker import ChannelSpec, link


def heterogeneous_design(device=None, target_mhz=250.0):
    channels = [
        ChannelSpec(kernel=get_kernel(1), n_pe=16, n_b=2,
                    max_query_len=128, max_ref_len=128),
        ChannelSpec(kernel=get_kernel(4), n_pe=8, n_b=4,
                    max_query_len=64, max_ref_len=64),
        ChannelSpec(kernel=get_kernel(14), n_pe=32, n_b=1,
                    max_query_len=256, max_ref_len=256),
    ]
    if device is None:
        return link(channels, target_mhz=target_mhz)
    return link(channels, device=device, target_mhz=target_mhz)


class TestLinkedDesignRoundTrip:
    def test_json_text_round_trips_exactly(self):
        design = heterogeneous_design()
        text = linked_design_to_json(design)
        assert json.loads(text) == linked_design_to_dict(design)
        relinked = linked_design_from_json(text)
        assert linked_design_to_json(relinked) == text

    def test_relink_reproduces_outputs(self):
        design = heterogeneous_design()
        relinked = linked_design_from_dict(linked_design_to_dict(design))
        assert relinked.clock_mhz == design.clock_mhz
        assert relinked.feasible == design.feasible
        assert relinked.total_throughput() == design.total_throughput()
        assert len(relinked.channels) == len(design.channels)
        for original, restored in zip(design.channels, relinked.channels):
            assert restored.kernel is original.kernel
            assert restored.n_pe == original.n_pe
            assert restored.n_b == original.n_b
            assert restored.max_query_len == original.max_query_len
            assert restored.max_ref_len == original.max_ref_len

    def test_device_and_clock_target_preserved(self):
        design = heterogeneous_design(device=ALVEO_U50, target_mhz=200.0)
        payload = linked_design_to_dict(design)
        assert payload["device"] == ALVEO_U50.name
        assert payload["target_mhz"] == 200.0
        relinked = linked_design_from_dict(payload)
        assert relinked.device is ALVEO_U50
        assert relinked.clock_mhz == design.clock_mhz

    def test_unknown_device_rejected(self):
        payload = linked_design_to_dict(heterogeneous_design())
        payload["device"] = "xc7z020"
        with pytest.raises(KeyError, match="unknown device"):
            linked_design_from_dict(payload)

    def test_unknown_kernel_rejected(self):
        payload = linked_design_to_dict(heterogeneous_design())
        payload["channels"][0]["kernel"] = "not_a_kernel"
        with pytest.raises(KeyError):
            linked_design_from_dict(payload)

    def test_pool_consumes_relinked_design(self):
        """The serving pool deploys a design that went through JSON."""
        from repro.service import DevicePool
        from repro.synth.linker import ChannelSpec as CS

        design = link([
            CS(kernel=get_kernel(1), n_pe=8, n_b=2,
               max_query_len=64, max_ref_len=64),
            CS(kernel=get_kernel(3), n_pe=8, n_b=2,
               max_query_len=64, max_ref_len=64),
        ])
        relinked = linked_design_from_json(linked_design_to_json(design))
        pool = DevicePool.from_linked_design(relinked)
        assert pool.kernel_ids() == [1, 3]
        outcome, _member = pool.execute(1, [((0, 1, 2, 3), (0, 1, 2, 3))])
        assert not outcome.errors
        assert outcome.results[0].cigar == "4M"
