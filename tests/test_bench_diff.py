"""The bench-artifact tolerance differ CI leans on must itself be sound."""

import pytest

from benchmarks.bench_diff import (
    DEFAULT_SKIP_KEYS,
    append_history,
    diff_docs,
    headline_metrics,
    history_record,
)


BASE = {
    "schema": "bench-engine/v2",
    "n_pe": 16,
    "cpus": 8,
    "valid_for_scaling": True,
    "speedup": 18.0,
    "backends": {"compiled": {"cells_per_sec": 1.0e7, "reps": 20}},
    "points": [{"p50_ms": 2.0}],
}


def _fresh(**overrides):
    doc = {
        **BASE,
        "backends": {"compiled": dict(BASE["backends"]["compiled"])},
        "points": [dict(BASE["points"][0])],
    }
    doc.update(overrides)
    return doc


class TestBenchDiff:
    def test_identical_docs_agree(self):
        assert diff_docs(BASE, _fresh()) == []

    def test_floats_pass_inside_band_fail_outside(self):
        inside = _fresh(speedup=18.0 * 3)
        assert diff_docs(BASE, inside, band=25.0) == []
        outside = _fresh(speedup=18.0 * 30)
        problems = diff_docs(BASE, outside, band=25.0)
        assert len(problems) == 1 and "$.speedup" in problems[0]
        # the band is symmetric: a collapse fails like a blow-up
        assert diff_docs(BASE, _fresh(speedup=18.0 / 30), band=25.0)

    def test_sign_flip_and_zero_never_pass(self):
        assert diff_docs(BASE, _fresh(speedup=-18.0))
        assert diff_docs(BASE, _fresh(speedup=0.0))

    def test_ints_strings_bools_exact(self):
        assert diff_docs(BASE, _fresh(n_pe=17))
        assert diff_docs(BASE, _fresh(schema="bench-engine/v1"))

    def test_skip_keys_value_exempt_but_presence_required(self):
        skipped = _fresh(cpus=1, valid_for_scaling=False)
        assert diff_docs(BASE, skipped, skip_keys=DEFAULT_SKIP_KEYS) == []
        missing = _fresh()
        del missing["cpus"]
        problems = diff_docs(BASE, missing, skip_keys=DEFAULT_SKIP_KEYS)
        assert any("$.cpus" in p and "missing" in p for p in problems)

    def test_structure_strict_both_directions(self):
        extra = _fresh(new_field=1)
        assert any("not in committed" in p for p in diff_docs(BASE, extra))
        nested = _fresh()
        del nested["backends"]["compiled"]["reps"]
        assert any(
            "$.backends.compiled.reps" in p for p in diff_docs(BASE, nested)
        )

    def test_nested_float_inside_list_uses_band(self):
        moved = _fresh()
        moved["points"][0]["p50_ms"] = 4.5
        assert diff_docs(BASE, moved, band=25.0) == []
        assert diff_docs(BASE, moved, band=2.0)

    def test_container_shape_mismatch(self):
        assert diff_docs(BASE, _fresh(points={"p50_ms": 2.0}))
        assert diff_docs(BASE, _fresh(backends=[1, 2]))

    def test_band_below_one_rejected(self):
        with pytest.raises(ValueError):
            diff_docs(BASE, _fresh(), band=0.5)


class TestHistory:
    def test_headline_keeps_top_level_scalars_only(self):
        doc = {
            "schema": "bench/v1",
            "p99_ms": 12.5,
            "reps": 3,
            "recovered": True,
            "note": None,
            "points": [{"p50_ms": 1.0}],
            "backends": {"compiled": {}},
        }
        headline = headline_metrics(doc)
        assert headline == {
            "schema": "bench/v1", "p99_ms": 12.5, "reps": 3,
            "recovered": True, "note": None,
        }
        assert headline_metrics([1, 2]) == {}

    def test_history_record_shape(self):
        record = history_record(
            "out/BENCH_x.json", {"p99_ms": 1.0}, [], 25.0
        )
        assert record["schema"] == "bench-history/v1"
        assert record["artifact"] == "BENCH_x.json"
        assert record["ok"] is True
        assert record["problems"] == 0
        assert record["headline"] == {"p99_ms": 1.0}
        assert isinstance(record["git_sha"], str) and record["git_sha"]

    def test_append_history_accumulates_jsonl(self, tmp_path):
        import json

        history = tmp_path / "BENCH_history.jsonl"
        append_history(str(history), "BENCH_a.json", {"m": 1.0}, [], 25.0)
        append_history(
            str(history), "BENCH_b.json", {"m": 2.0}, ["$.m: bad"], 25.0
        )
        lines = [
            json.loads(line)
            for line in history.read_text().splitlines()
        ]
        assert len(lines) == 2
        assert lines[0]["artifact"] == "BENCH_a.json"
        assert lines[0]["ok"] is True
        assert lines[1]["ok"] is False
        assert lines[1]["problems"] == 1

    def test_main_appends_history(self, tmp_path):
        import json

        from benchmarks.bench_diff import main

        committed = tmp_path / "committed.json"
        fresh = tmp_path / "fresh.json"
        committed.write_text(json.dumps({"p99_ms": 10.0}))
        fresh.write_text(json.dumps({"p99_ms": 12.0}))
        history = tmp_path / "hist.jsonl"
        code = main([
            str(committed), str(fresh), "--append-history", str(history)
        ])
        assert code == 0
        record = json.loads(history.read_text())
        assert record["ok"] is True
        assert record["headline"] == {"p99_ms": 12.0}
