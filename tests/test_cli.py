"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestListCommand:
    def test_lists_all_kernels(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("global_linear", "sdtw", "protein_local_linear"):
            assert name in out


class TestAlignCommand:
    def test_dna_alignment(self, capsys):
        rc = main(["align", "2", "ACGTAGGCT", "ACGTAGCT"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "score" in out and "cigar" in out

    def test_kernel_by_name(self, capsys):
        rc = main(["align", "local_linear", "ACGT", "ACGT"])
        assert rc == 0
        assert "4M" in capsys.readouterr().out

    def test_protein_kernel(self, capsys):
        rc = main(["align", "15", "MKTAYI", "MKTAYI"])
        assert rc == 0

    def test_signal_kernel(self, capsys):
        rc = main(["align", "14", "10,20,30", "5,10,20,30,40"])
        assert rc == 0
        assert "score" in capsys.readouterr().out

    def test_struct_alphabet_rejected(self):
        with pytest.raises(SystemExit):
            main(["align", "9", "1,2", "1,2"])

    def test_invalid_dna(self):
        with pytest.raises(ValueError):
            main(["align", "1", "ACGX", "ACGT"])


class TestSynthCommand:
    def test_feasible_config(self, capsys):
        rc = main(["synth", "1", "--n-pe", "16", "--n-b", "2"])
        assert rc == 0
        assert "synthesis report" in capsys.readouterr().out

    def test_infeasible_config_exit_code(self, capsys):
        rc = main(["synth", "8", "--n-pe", "32", "--n-b", "16", "--n-k", "8"])
        assert rc == 1


class TestRtlCommand:
    def test_emits_verilog(self, capsys):
        assert main(["rtl", "1", "--n-pe", "8"]) == 0
        assert "module global_linear_pe" in capsys.readouterr().out


class TestVerifyCommand:
    def test_verify_passes(self, capsys):
        rc = main(["verify", "1", "--pairs", "1", "--length", "16"])
        assert rc == 0
        assert "PASS" in capsys.readouterr().out

    def test_verify_score_only_kernel(self, capsys):
        rc = main(["verify", "14", "--pairs", "1", "--length", "16"])
        assert rc == 0


class TestOccupancyCommand:
    def test_renders_gantt(self, capsys):
        rc = main(["occupancy", "1", "--query-len", "8", "--ref-len", "10",
                   "--n-pe", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "#" in out and "utilization" in out

    def test_banded_kernel_uses_its_band(self, capsys):
        rc = main(["occupancy", "11", "--query-len", "40", "--ref-len", "40"])
        assert rc == 0
        assert "band=32" in capsys.readouterr().out


class TestServiceCommands:
    def test_loadgen_in_proc_smoke(self, capsys):
        """The CI smoke invocation: in-proc service, zero errors, metrics."""
        rc = main([
            "loadgen", "--in-proc", "--kernel", "1", "--kernel", "3",
            "--rate", "300", "--requests", "20", "--length", "12",
            "--pairs", "4", "--max-batch", "4", "--max-delay-ms", "10",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "err 0" in out
        assert '"aligned_total": 20' in out
        assert '"latency_ms"' in out

    def test_loadgen_rejects_struct_kernel(self):
        with pytest.raises(SystemExit, match="struct"):
            main(["loadgen", "--in-proc", "--kernel", "9", "--requests", "1"])

    def test_loadgen_trace_excludes_synthetic_flags(self, tmp_path):
        """--trace and the Poisson-load options are mutually exclusive,
        and the error names the offending flags."""
        trace = tmp_path / "tiles.jsonl"
        trace.write_text(
            '{"kernel": 1, "query": [0, 1], "reference": [0, 1]}\n'
        )
        with pytest.raises(SystemExit, match="--rate"):
            main([
                "loadgen", "--in-proc", "--trace", str(trace),
                "--rate", "100",
            ])
        with pytest.raises(SystemExit, match="--requests.*--pairs"):
            main([
                "loadgen", "--in-proc", "--trace", str(trace),
                "--requests", "5", "--pairs", "2",
            ])

    def test_loadgen_trace_missing_file_fails_loudly(self, tmp_path):
        with pytest.raises(SystemExit, match="trace"):
            main([
                "loadgen", "--in-proc",
                "--trace", str(tmp_path / "absent.jsonl"),
            ])

    def test_serve_parser_accepts_service_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args([
            "serve", "--kernel", "1", "--kernel", "3", "--port", "0",
            "--max-batch", "4", "--queue-bound", "32",
        ])
        assert args.command == "serve"
        assert args.kernel == ["1", "3"]
        assert args.max_batch == 4
        assert args.queue_bound == 32


class TestMapCommand:
    def test_map_simulated_flowcell_roundtrip(self, tmp_path, capsys):
        """Simulate, map, validate SAM, record a trace, then replay the
        trace through loadgen — the full flowcell-to-replay loop."""
        out = tmp_path / "mapped.sam"
        trace = tmp_path / "tiles.jsonl"
        rc = main([
            "map", "--out", str(out),
            "--genome-length", "30000", "--reads", "4",
            "--read-length", "200", "--seed", "7", "--genome-seed", "8",
            "--trace-out", str(trace),
        ])
        printed = capsys.readouterr().out
        assert rc == 0
        assert '"dropped_chunks": 0' in printed
        assert "records validated" in printed
        assert out.exists() and trace.exists()

        rc = main([
            "loadgen", "--in-proc", "--trace", str(trace),
            "--max-len", "128", "--n-pe", "32", "--backend", "compiled",
        ])
        assert rc == 0
        assert "err 0" in capsys.readouterr().out


class TestExperimentCommands:
    def test_fig4(self, capsys):
        assert main(["fig4"]) == 0
        assert "GACT" in capsys.readouterr().out

    def test_fig3_requires_kernel_id(self):
        with pytest.raises(SystemExit):
            main(["fig3", "5"])  # only kernels 1 and 9 were swept

    def test_hls(self, capsys):
        assert main(["hls"]) == 0
        assert "Vitis" in capsys.readouterr().out

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
