"""Tests for the synthetic data substrates."""

import numpy as np
import pytest

from repro.data.blosum import BLOSUM62
from repro.data.fasta import read_fasta, write_fasta
from repro.data.genome import extract_region, random_genome, reverse_complement
from repro.data.pbsim import CLR_ERROR_WEIGHTS, simulate_read, simulate_read_pairs
from repro.data.profiles import profile_from_stack, profile_pair
from repro.data.protein import (
    SWISSPROT_FREQUENCIES,
    mutate_protein,
    protein_pairs,
    random_protein,
)
from repro.data.signals import (
    PoreModel,
    quantize_signal,
    random_complex_signal,
    sdtw_pair,
    squiggle_from_sequence,
    warp_signal,
)


class TestGenome:
    def test_length_and_codes(self):
        g = random_genome(500, seed=1)
        assert len(g) == 500
        assert set(g) <= {0, 1, 2, 3}

    def test_deterministic(self):
        assert random_genome(200, seed=2) == random_genome(200, seed=2)

    def test_gc_content_respected(self):
        g = random_genome(20000, gc_content=0.41, repeat_fraction=0.0, seed=3)
        gc = sum(1 for b in g if b in (1, 2)) / len(g)
        assert abs(gc - 0.41) < 0.02

    def test_repeats_create_duplicate_kmers(self):
        no_rep = random_genome(4000, repeat_fraction=0.0, seed=4)
        with_rep = random_genome(4000, repeat_fraction=0.4, seed=4)

        def distinct_kmers(g, k=16):
            return len({g[i:i + k] for i in range(len(g) - k)})

        assert distinct_kmers(with_rep) < distinct_kmers(no_rep)

    def test_extract_region_bounds(self):
        g = random_genome(100, seed=5)
        assert len(extract_region(g, 10, 20)) == 20
        with pytest.raises(ValueError):
            extract_region(g, 90, 20)

    def test_reverse_complement(self):
        assert reverse_complement((0, 1, 2, 3)) == (0, 1, 2, 3)
        assert reverse_complement((0, 0)) == (3, 3)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            random_genome(0)
        with pytest.raises(ValueError):
            random_genome(10, gc_content=1.5)


class TestPbsim:
    def test_error_rate_zero_identity(self):
        ref = random_genome(100, seed=6)
        assert simulate_read(ref, error_rate=0.0, seed=7) == ref

    def test_error_rate_scales_divergence(self):
        ref = random_genome(2000, seed=8)
        low = simulate_read(ref, error_rate=0.05, seed=9)
        high = simulate_read(ref, error_rate=0.40, seed=9)
        # higher error -> length deviates more and identity drops
        match_low = sum(a == b for a, b in zip(low, ref)) / len(ref)
        match_high = sum(a == b for a, b in zip(high, ref)) / len(ref)
        assert match_high < match_low

    def test_clr_weights_indel_dominated(self):
        sub, ins, dele = CLR_ERROR_WEIGHTS
        assert ins + dele > 5 * sub

    def test_pairs_have_exact_length(self):
        pairs = simulate_read_pairs(5, length=64, seed=10)
        assert len(pairs) == 5
        for p in pairs:
            assert len(p.reference) == 64
            assert len(p.query) <= 64

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            simulate_read((0, 1), error_rate=1.5)
        with pytest.raises(ValueError):
            simulate_read_pairs(0)


class TestProtein:
    def test_frequencies_sum_to_100(self):
        assert abs(sum(SWISSPROT_FREQUENCIES) - 100.0) < 0.5

    def test_random_protein_composition(self):
        p = random_protein(50000, seed=11)
        leucine = 10  # 'L' index in ARNDCQEGHILKMFPSTWYV
        frac = sum(1 for a in p if a == leucine) / len(p)
        assert abs(frac - 0.0966) < 0.01

    def test_mutate_identity(self):
        p = random_protein(200, seed=12)
        hom = mutate_protein(p, identity=0.9, indel_rate=0.0, seed=13)
        same = sum(a == b for a, b in zip(hom, p)) / len(p)
        assert same > 0.8

    def test_pairs(self):
        pairs = protein_pairs(3, length=40, seed=14)
        assert len(pairs) == 3
        for q, r in pairs:
            assert len(r) == 40 and len(q) <= 40


class TestBlosum:
    def test_shape(self):
        assert len(BLOSUM62) == 20
        assert all(len(row) == 20 for row in BLOSUM62)

    def test_symmetric(self):
        m = np.asarray(BLOSUM62)
        assert (m == m.T).all()

    def test_diagonal_positive(self):
        assert all(BLOSUM62[i][i] > 0 for i in range(20))

    def test_known_values(self):
        from repro.core.alphabet import PROTEIN_LETTERS

        idx = {ch: i for i, ch in enumerate(PROTEIN_LETTERS)}
        assert BLOSUM62[idx["W"]][idx["W"]] == 11
        assert BLOSUM62[idx["I"]][idx["L"]] == 2
        assert BLOSUM62[idx["A"]][idx["A"]] == 4


class TestSignals:
    def test_complex_signal_quantised(self):
        from repro.data.signals import COMPLEX_COMPONENT_T

        sig = random_complex_signal(32, seed=15)
        assert len(sig) == 32
        for re, im in sig:
            assert COMPLEX_COMPONENT_T.quantize(re) == re
            assert COMPLEX_COMPONENT_T.quantize(im) == im

    def test_warp_stretches_length(self):
        sig = random_complex_signal(20, seed=16)
        assert len(warp_signal(sig, stretch=1.5, seed=17)) == 30

    def test_pore_model_deterministic(self):
        assert PoreModel(seed=1).level(100) == PoreModel(seed=1).level(100)

    def test_kmer_code_packing(self):
        assert PoreModel.kmer_code((1, 2, 3), 0, 3) == (1 << 4) | (2 << 2) | 3

    def test_squiggle_range(self):
        genome = random_genome(40, seed=18)
        sq = squiggle_from_sequence(genome, seed=19)
        assert all(0 <= v <= 255 for v in sq)
        assert len(sq) >= len(genome) - 6

    def test_squiggle_too_short_sequence(self):
        with pytest.raises(ValueError):
            squiggle_from_sequence((0, 1), seed=20)

    def test_quantize_constant_signal(self):
        out = quantize_signal(np.full(10, 42.0))
        assert len(set(out)) == 1

    def test_sdtw_pair_query_shorter(self):
        q, r = sdtw_pair(ref_bases=40, seed=21)
        assert len(q) < len(r)


class TestProfiles:
    def test_columns_sum_to_one(self):
        p1, p2 = profile_pair(n_cols=20, seed=22)
        for profile in (p1, p2):
            assert len(profile) == 20
            for col in profile:
                assert abs(sum(col) - 1.0) < 1e-9

    def test_profile_from_stack_counts(self):
        stack = np.array([[0, 1], [0, -1]])
        profile = profile_from_stack(stack)
        assert profile[0] == (1.0, 0.0, 0.0, 0.0, 0.0)
        assert profile[1] == (0.0, 0.5, 0.0, 0.0, 0.5)

    def test_related_profiles_similar(self):
        p1, p2 = profile_pair(n_cols=50, divergence=0.05, seed=23)
        agree = sum(
            1 for c1, c2 in zip(p1, p2)
            if np.argmax(c1) == np.argmax(c2)
        )
        assert agree > 40


class TestFasta:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "x.fa"
        records = [("seq1", "ACGT" * 30), ("seq2", "GGCC")]
        write_fasta(path, records)
        back = read_fasta(path)
        assert back == dict(records)

    def test_wrapping(self, tmp_path):
        path = tmp_path / "x.fa"
        write_fasta(path, [("s", "A" * 100)], width=10)
        lines = path.read_text().strip().split("\n")
        assert len(lines) == 11
        assert all(len(line) <= 10 for line in lines[1:])

    def test_sequence_before_header_rejected(self, tmp_path):
        path = tmp_path / "bad.fa"
        path.write_text("ACGT\n")
        with pytest.raises(ValueError):
            read_fasta(path)
