"""Tests for the closed-loop autoscaling subsystem (repro.autoscale)."""

import pytest

from repro.autoscale import (
    Actuator,
    AutoscaleController,
    KernelSignal,
    MetricsWatcher,
    Plan,
    PlanInfeasible,
    Planner,
    SloPolicy,
    default_runtime_factory,
    flatten_snapshot,
    quantile_from_buckets,
)
from repro.host import DeviceRuntime
from repro.kernels import get_kernel
from repro.service.pool import DevicePool
from repro.synth import LaunchConfig
from repro.synth.device import FpgaDevice
from repro.synth.dse import budget_caps, clear_explore_memo

SMALL_PLANNER = dict(
    max_query_len=64, max_ref_len=64,
    n_pe_choices=(16, 32), n_b_choices=(1, 4),
)


def small_config(**overrides):
    base = dict(n_pe=8, n_b=2, n_k=1, max_query_len=64, max_ref_len=64)
    base.update(overrides)
    return LaunchConfig(**base)


def make_signal(kernel_id=1, replicas=1, **overrides):
    base = dict(
        kernel_id=kernel_id, replicas=replicas, draining=0, in_flight=0,
        arrival_rps=1.0, completion_rps=1.0, rejection_rps=0.0,
        backlog=0, queue_p99_ms=None, latency_p99_ms=None,
    )
    base.update(overrides)
    return KernelSignal(**base)


class TestQuantileFromBuckets:
    def test_empty_window_is_none(self):
        assert quantile_from_buckets([], 0.99) is None
        assert quantile_from_buckets([(10.0, 0), (None, 0)], 0.5) is None

    def test_interpolates_within_bucket(self):
        buckets = [(10.0, 0), (100.0, 10)]
        # rank 5 of 10 falls halfway through the (10, 100] bucket.
        assert quantile_from_buckets(buckets, 0.5) == pytest.approx(55.0)

    def test_overflow_clamps_to_lower_bound(self):
        buckets = [(10.0, 1), (None, 9)]
        assert quantile_from_buckets(buckets, 0.99) == pytest.approx(10.0)

    def test_invalid_quantile_rejected(self):
        with pytest.raises(ValueError):
            quantile_from_buckets([(1.0, 1)], 1.5)


class TestFlattenSnapshot:
    def test_inproc_shape_passthrough(self):
        flat = flatten_snapshot({
            "counters": {"a": 1},
            "histograms": {"h": {"count": 0}},
            "pool": [{"kernel_id": 1}],
            "kernels": [1],
        })
        assert flat["counters"] == {"a": 1}
        assert flat["pool"] == [{"kernel_id": 1}]

    def test_frontdoor_shape_concatenates_shard_pools(self):
        flat = flatten_snapshot({
            "counters": {"a": 3},
            "histograms": {},
            "shards": {
                "0": {"pool": [{"kernel_id": 1}], "kernels": [1]},
                "1": {"pool": [{"kernel_id": 2}], "kernels": [2, 1]},
            },
        })
        assert len(flat["pool"]) == 2
        assert flat["kernels"] == [1, 2]


class TestMetricsWatcher:
    def _snapshots(self):
        pool = [{
            "kernel_id": 1, "draining": False, "in_flight": 2,
        }]
        snap1 = {
            "counters": {
                "kernel.1.admitted_total": 10,
                "kernel.1.completed_total": 8,
                "kernel.1.rejected_total": 0,
            },
            "histograms": {
                "kernel.1.latency_ms": {
                    "buckets": [[10.0, 5], [100.0, 3]],
                },
            },
            "pool": pool,
            "kernels": [1],
        }
        snap2 = {
            "counters": {
                "kernel.1.admitted_total": 30,
                "kernel.1.completed_total": 24,
                "kernel.1.rejected_total": 4,
            },
            "histograms": {
                "kernel.1.latency_ms": {
                    "buckets": [[10.0, 5], [100.0, 13]],
                },
            },
            "pool": pool,
            "kernels": [1],
        }
        return [snap1, snap2]

    def test_first_sample_is_empty_window(self):
        snaps = iter(self._snapshots())
        watcher = MetricsWatcher(lambda: next(snaps), clock=lambda: 0.0)
        sample = watcher.sample()
        signal = sample.kernels[1]
        assert sample.interval_s == 0.0
        assert signal.arrival_rps == 0.0
        assert signal.latency_p99_ms is None
        assert signal.replicas == 1
        assert signal.in_flight == 2
        assert signal.backlog == 2

    def test_second_sample_differentiates(self):
        snaps = iter(self._snapshots())
        clock = iter([0.0, 10.0])
        watcher = MetricsWatcher(
            lambda: next(snaps), clock=lambda: next(clock)
        )
        watcher.sample()
        sample = watcher.sample()
        signal = sample.kernels[1]
        assert sample.interval_s == pytest.approx(10.0)
        assert signal.arrival_rps == pytest.approx(2.0)
        assert signal.completion_rps == pytest.approx(1.6)
        assert signal.rejection_rps == pytest.approx(0.4)
        assert signal.backlog == 6
        # The window saw 10 new observations, all in the (10, 100]
        # bucket: windowed p99 interpolates inside it, while the
        # lifetime histogram would be dragged down by the 5 early ones.
        assert signal.latency_p99_ms == pytest.approx(99.1)

    def test_shard_shape_supported(self):
        shard_snaps = [
            {
                "counters": snap["counters"],
                "histograms": snap["histograms"],
                "shards": {"0": {"pool": snap["pool"], "kernels": [1]}},
            }
            for snap in self._snapshots()
        ]
        snaps = iter(shard_snaps)
        clock = iter([0.0, 5.0])
        watcher = MetricsWatcher(
            lambda: next(snaps), clock=lambda: next(clock)
        )
        watcher.sample()
        sample = watcher.sample()
        assert sample.kernels[1].arrival_rps == pytest.approx(4.0)
        assert sample.kernels[1].replicas == 1


class TestPlanner:
    def setup_method(self):
        clear_explore_memo()

    def test_scale_up_on_violation(self):
        planner = Planner(SloPolicy(p99_target_ms=100.0), **SMALL_PLANNER)
        desired, reason = planner.desired_replicas(
            make_signal(latency_p99_ms=250.0), current=1
        )
        assert desired == 2
        assert "p99" in reason

    def test_severe_violation_doubles(self):
        planner = Planner(SloPolicy(p99_target_ms=100.0), **SMALL_PLANNER)
        desired, _ = planner.desired_replicas(
            make_signal(replicas=2, latency_p99_ms=900.0), current=2
        )
        assert desired == 4

    def test_rejections_double(self):
        planner = Planner(SloPolicy(p99_target_ms=100.0), **SMALL_PLANNER)
        desired, reason = planner.desired_replicas(
            make_signal(replicas=2, rejection_rps=3.0), current=2
        )
        assert desired == 4
        assert "rejecting" in reason

    def test_scale_down_when_underloaded(self):
        planner = Planner(SloPolicy(p99_target_ms=100.0), **SMALL_PLANNER)
        desired, _ = planner.desired_replicas(
            make_signal(replicas=3, latency_p99_ms=10.0), current=3
        )
        assert desired == 2

    def test_no_scale_down_with_backlog(self):
        planner = Planner(SloPolicy(p99_target_ms=100.0), **SMALL_PLANNER)
        desired, _ = planner.desired_replicas(
            make_signal(replicas=3, latency_p99_ms=10.0, backlog=5),
            current=3,
        )
        assert desired == 3

    def test_empty_window_holds(self):
        planner = Planner(SloPolicy(p99_target_ms=100.0), **SMALL_PLANNER)
        desired, reason = planner.desired_replicas(
            make_signal(replicas=2), current=2
        )
        assert desired == 2
        assert reason == "within band"

    def test_plan_fits_budget(self):
        policy = SloPolicy(p99_target_ms=100.0, max_replicas=8)
        planner = Planner(policy, **SMALL_PLANNER)
        plan = planner.plan({
            1: make_signal(kernel_id=1, latency_p99_ms=900.0),
            2: make_signal(kernel_id=2, replicas=2, latency_p99_ms=900.0),
        })
        assert plan.fits(policy)
        usage = plan.usage()
        caps = budget_caps(policy.budget_fraction, policy.device)
        assert all(usage[kind] <= caps[kind] for kind in caps)

    def test_oversubscription_sheds_replicas(self):
        # A tiny budget forces the fitting loop to shed what demand
        # asked for; the plan that comes back still fits.
        policy = SloPolicy(
            p99_target_ms=100.0, max_replicas=8, budget_fraction=0.05
        )
        planner = Planner(policy, **SMALL_PLANNER)
        plan = planner.plan({
            1: make_signal(kernel_id=1, replicas=4, latency_p99_ms=900.0),
        })
        assert plan.fits(policy)
        assert plan.by_kernel[1].replicas < 8

    def test_infeasible_raises_not_oversubscribes(self):
        tiny = FpgaDevice("tiny", luts=1000, ffs=2000, bram36=2, dsps=2)
        policy = SloPolicy(p99_target_ms=100.0, device=tiny)
        planner = Planner(policy, **SMALL_PLANNER)
        with pytest.raises(PlanInfeasible):
            planner.plan({1: make_signal(latency_p99_ms=900.0)})


class TestActuator:
    def setup_method(self):
        clear_explore_memo()

    def _pool(self, n=1):
        return DevicePool([
            DeviceRuntime(get_kernel(1), small_config()) for _ in range(n)
        ])

    def _plan(self, replicas):
        planner = Planner(SloPolicy(p99_target_ms=100.0), **SMALL_PLANNER)
        entry = planner.plan(
            {1: make_signal()}
        ).by_kernel[1].with_replicas(replicas)
        return Plan(kernels=(entry,))

    def test_scale_up_adds_members(self):
        pool = self._pool(1)
        actuator = Actuator(
            pool, runtime_factory=default_runtime_factory(64, 64)
        )
        actions = actuator.apply(self._plan(3))
        assert [a.kind for a in actions] == ["add", "add"]
        assert all(a.ok for a in actions)
        assert pool.replica_counts() == {1: 3}

    def test_scale_down_retires_newest(self):
        pool = self._pool(3)
        newest = pool.active_members(1)[-1].name
        actuator = Actuator(pool)
        actions = actuator.apply(self._plan(2))
        assert [a.kind for a in actions] == ["retire"]
        assert actions[0].member == newest
        assert pool.replica_counts() == {1: 2}

    def test_dry_run_never_mutates(self):
        pool = self._pool(1)
        actuator = Actuator(pool, dry_run=True)
        actions = actuator.apply(self._plan(4))
        assert len(actions) == 3
        assert all(a.dry_run and a.ok for a in actions)
        assert pool.replica_counts() == {1: 1}

    def test_never_retires_last_member(self):
        pool = self._pool(1)
        actuator = Actuator(pool)
        plan = self._plan(1)
        entry = plan.kernels[0].with_replicas(0)
        actions = actuator.apply(Plan(kernels=(entry,)))
        assert actions == []
        assert pool.replica_counts() == {1: 1}


class _StubWatcher:
    """Feeds a controller a scripted sequence of demand samples."""

    def __init__(self, samples):
        self._samples = iter(samples)

    def sample(self):
        return next(self._samples)


def demand(at_s, signals):
    from repro.autoscale import DemandSample

    return DemandSample(
        at_s=at_s, interval_s=1.0,
        kernels={s.kernel_id: s for s in signals},
    )


class TestController:
    def setup_method(self):
        clear_explore_memo()

    def _controller(self, samples, clock_values, policy=None, pool_n=1):
        policy = policy or SloPolicy(
            p99_target_ms=100.0, cooldown_s=3.0, window_s=30.0,
            max_actions_per_window=8,
        )
        pool = DevicePool([
            DeviceRuntime(get_kernel(1), small_config())
            for _ in range(pool_n)
        ])
        clock = iter(clock_values)
        controller = AutoscaleController(
            _StubWatcher(samples),
            Planner(policy, **SMALL_PLANNER),
            Actuator(pool, runtime_factory=default_runtime_factory(64, 64)),
            clock=lambda: next(clock),
        )
        return controller, pool

    def test_step_scales_up_on_violation(self):
        controller, pool = self._controller(
            [demand(0.0, [make_signal(latency_p99_ms=500.0)])],
            [0.0],
        )
        decision = controller.step()
        assert decision.scaled_up
        assert pool.replica_counts() == {1: 2}
        assert controller.decisions == [decision]

    def test_cooldown_skips_recently_touched_kernel(self):
        controller, pool = self._controller(
            [
                demand(0.0, [make_signal(latency_p99_ms=500.0)]),
                demand(1.0, [make_signal(replicas=2,
                                         latency_p99_ms=500.0)]),
            ],
            [0.0, 1.0],
        )
        controller.step()
        second = controller.step()
        assert not second.scaled_up
        assert (1, "cooldown") in second.skipped
        assert pool.replica_counts() == {1: 2}

    def test_cooldown_expires(self):
        controller, pool = self._controller(
            [
                demand(0.0, [make_signal(latency_p99_ms=500.0)]),
                demand(5.0, [make_signal(replicas=2,
                                         latency_p99_ms=150.0)]),
            ],
            [0.0, 5.0],
        )
        controller.step()
        second = controller.step()
        assert second.scaled_up
        assert pool.replica_counts() == {1: 3}

    def test_window_cap_clamps_actions(self):
        policy = SloPolicy(
            p99_target_ms=100.0, cooldown_s=0.0, window_s=30.0,
            max_actions_per_window=1, max_replicas=8,
        )
        controller, pool = self._controller(
            [demand(0.0, [make_signal(replicas=2,
                                      latency_p99_ms=900.0)])],
            [0.0],
            policy=policy,
            pool_n=2,
        )
        decision = controller.step()
        # Severe violation wants 2 -> 4, but the window budget of one
        # clamps the move to a single added replica.
        assert len([a for a in decision.actions if a.ok]) == 1
        assert pool.replica_counts() == {1: 3}

    def test_infeasible_plan_is_reported_not_raised(self):
        tiny = FpgaDevice("tiny", luts=1000, ffs=2000, bram36=2, dsps=2)
        policy = SloPolicy(p99_target_ms=100.0, device=tiny)
        controller, pool = self._controller(
            [demand(0.0, [make_signal(latency_p99_ms=500.0)])],
            [0.0],
            policy=policy,
        )
        decision = controller.step()
        assert decision.infeasible
        assert decision.actions == ()
        assert pool.replica_counts() == {1: 1}

    def test_summary_rolls_up(self):
        controller, _ = self._controller(
            [demand(0.0, [make_signal(latency_p99_ms=500.0)])],
            [0.0],
        )
        controller.step()
        summary = controller.summary()
        assert summary["decisions"] == 1
        assert summary["scale_ups"] == 1
        assert summary["log"][0]["actions"][0]["kind"] == "add"
