"""Batched wavefront execution: bit-identity, exceptions, pre-warming.

The batched sweep's contract is that it is *invisible* — every
observable output of ``compiled_align_batch`` equals running
``compiled_align`` per pair, for any batch composition the service can
produce: shuffled mixed lengths, mixed parameter sets, a single pair,
an empty flush, and the all-identical batch the cache's single-flight
path collapses to.  The exception contract matches too: the first
invalid pair in submission order raises the same error the single-pair
call would.

Alongside ride the PR's pre-warm regressions (lowering is memoized and
primed at construction/worker-ready time, never on the first request)
and the ``DeviceRuntime.run`` fast-path plumbing (auto-engage, opt-out,
``batch_exec=True`` without a batched backend, and the per-pair
fallback that keeps failure isolation).
"""

import dataclasses
import random

import numpy as np
import pytest

import repro.backend as backend_pkg
from repro.backend import (
    BATCH_BACKENDS,
    compiled_align,
    compiled_align_batch,
    get_batch_backend,
    prewarm,
)
from repro.backend import compiler
from repro.host import DeviceRuntime, RunOptions
from repro.kernels import get_kernel, kernel_ids
from repro.obs import TraceRecorder, set_recorder
from repro.shard import Deployment
from repro.synth import LaunchConfig
from repro.systolic.engine import SystolicAlignmentError
from repro.verify_fuzz import generate_case

ALL_KERNELS = tuple(kernel_ids())


def _single(spec, query, reference, n_pe, params=None, collect_matrix=False):
    return compiled_align(
        spec, query, reference, params=params, n_pe=n_pe,
        collect_matrix=collect_matrix,
    )


def assert_same_result(single, batched, collect_matrix=False):
    """Every observable output must match the single-pair run exactly."""
    assert batched.score == single.score
    assert type(batched.score) is type(single.score)
    assert batched.start == single.start
    assert batched.end == single.end
    assert batched.alignment == single.alignment
    assert batched.cycles == single.cycles
    if collect_matrix:
        assert batched.matrix.dtype == single.matrix.dtype
        assert np.array_equal(batched.matrix, single.matrix)


def _mixed_batch(kid, n=6, max_len=24):
    """A deterministic, shuffled, mixed-length batch for one kernel."""
    cases = [generate_case(kid, 977 * kid + s, max_len=max_len) for s in range(n)]
    random.Random(kid).shuffle(cases)
    pairs = [(case.query, case.reference) for case in cases]
    n_pes = [case.n_pe for case in cases]
    return pairs, n_pes


class TestBatchedBitIdentity:
    """The core property: batched == per-pair, byte for byte."""

    @pytest.mark.parametrize("kid", ALL_KERNELS)
    def test_shuffled_mixed_length_batch(self, kid):
        spec = get_kernel(kid)
        pairs, n_pes = _mixed_batch(kid)
        batched = compiled_align_batch(spec, pairs, n_pe=n_pes)
        assert len(batched) == len(pairs)
        for (query, reference), n_pe, result in zip(pairs, n_pes, batched):
            assert_same_result(
                _single(spec, query, reference, n_pe), result
            )

    @pytest.mark.parametrize("kid", (1, 9, 15))
    def test_collected_matrices_identical(self, kid):
        spec = get_kernel(kid)
        pairs, n_pes = _mixed_batch(kid, n=4, max_len=16)
        batched = compiled_align_batch(
            spec, pairs, n_pe=n_pes, collect_matrix=True
        )
        for (query, reference), n_pe, result in zip(pairs, n_pes, batched):
            assert_same_result(
                _single(spec, query, reference, n_pe, collect_matrix=True),
                result, collect_matrix=True,
            )

    def test_empty_batch(self):
        assert compiled_align_batch(get_kernel(1), []) == []

    @pytest.mark.parametrize("kid", (1, 5, 11))
    def test_batch_of_one(self, kid):
        spec = get_kernel(kid)
        case = generate_case(kid, 7, max_len=20)
        (result,) = compiled_align_batch(
            spec, [(case.query, case.reference)], n_pe=case.n_pe
        )
        assert_same_result(
            _single(spec, case.query, case.reference, case.n_pe), result
        )

    def test_all_pairs_identical(self):
        """The shape the cache's single-flight dedup collapses to."""
        spec = get_kernel(1)
        case = generate_case(1, 42, max_len=20)
        pair = (case.query, case.reference)
        batched = compiled_align_batch(spec, [pair] * 5, n_pe=8)
        single = _single(spec, *pair, n_pe=8)
        assert len(batched) == 5
        for result in batched:
            assert_same_result(single, result)

    @pytest.mark.parametrize("kid", (1, 3))
    def test_mixed_params_batch(self, kid):
        """Per-pair params bucket by identity yet stay bit-identical."""
        spec = get_kernel(kid)
        default = spec.default_params
        other = dataclasses.replace(default, match=3)
        pairs, _ = _mixed_batch(kid, n=6, max_len=20)
        params = [default, other, default, other, other, default]
        batched = compiled_align_batch(spec, pairs, params=params, n_pe=4)
        for (query, reference), p, result in zip(pairs, params, batched):
            assert_same_result(
                _single(spec, query, reference, 4, params=p), result
            )

    def test_batch_obs_counters(self):
        """Sweep/waste accounting lands in the engine.batch.* metrics."""
        recorder = TraceRecorder()
        previous = set_recorder(recorder)
        try:
            pairs, n_pes = _mixed_batch(1, n=5, max_len=20)
            compiled_align_batch(get_kernel(1), pairs, n_pe=n_pes)
        finally:
            set_recorder(previous)
        counters = recorder.snapshot()["counters"]
        gauges = recorder.snapshot()["gauges"]
        assert counters["engine.batch.pairs"] == 5
        assert counters["engine.batch.sweeps"] >= 1
        assert counters["engine.batch.padded_cells"] >= counters[
            "engine.batch.lane_cells"
        ]
        assert 0.0 <= gauges["engine.batch.waste_frac"] < 1.0


class TestBatchExceptionParity:
    """The first invalid pair (submission order) raises the single error."""

    def test_invalid_first_pair(self):
        spec = get_kernel(1)
        good = generate_case(1, 3, max_len=16)
        with pytest.raises(SystolicAlignmentError) as single_err:
            compiled_align(spec, (), good.reference)
        with pytest.raises(SystolicAlignmentError) as batch_err:
            compiled_align_batch(
                spec, [((), good.reference), (good.query, good.reference)]
            )
        assert str(batch_err.value) == str(single_err.value)

    def test_first_offender_wins(self):
        """Two bad pairs: the earlier submission index's error surfaces."""
        spec = get_kernel(1)
        good = generate_case(1, 3, max_len=16)
        too_long = tuple(range(0, 4)) * 100  # 400 > max_query_len
        with pytest.raises(SystolicAlignmentError) as single_err:
            compiled_align(spec, too_long, good.reference, max_query_len=64)
        with pytest.raises(SystolicAlignmentError) as batch_err:
            compiled_align_batch(
                spec,
                [
                    (good.query, good.reference),
                    (too_long, good.reference),
                    ((), good.reference),
                ],
                max_query_len=64,
            )
        assert str(batch_err.value) == str(single_err.value)


class TestPrewarm:
    """Lowering is memoized and primed before the first request."""

    def test_prewarm_populates_compiler_cache(self):
        spec = get_kernel(1)
        assert prewarm(spec) is True
        before = len(compiler._CACHE)
        # memoized: a second warm (and the align that follows) reuses
        # the cached lowering instead of re-generating the PE source
        assert prewarm(spec) is True
        assert len(compiler._CACHE) == before
        cached = compiler.lower(spec, spec.default_params)
        assert compiler.lower(spec, spec.default_params) is cached

    def test_prewarm_swallows_unsupported_specs(self, monkeypatch):
        def boom(spec, params=None):
            raise compiler.UnsupportedSpecError("not lowerable")

        monkeypatch.setattr(compiler, "lower", boom)
        assert compiler.prewarm(get_kernel(1)) is False

    def test_runtime_construction_prewarms_compiled(self, monkeypatch):
        calls = []
        monkeypatch.setattr(
            backend_pkg, "prewarm",
            lambda spec, params=None: calls.append(spec.kernel_id) or True,
        )
        config = LaunchConfig(n_pe=4, max_query_len=32, max_ref_len=32)
        DeviceRuntime(get_kernel(1), config, backend="compiled")
        assert calls == [1]
        DeviceRuntime(get_kernel(1), config, backend="systolic")
        assert calls == [1]  # systolic has no compiled artifact to warm

    def test_deployment_prewarm(self):
        compiled = Deployment(kernel_ids=(1, 3), backend="compiled")
        assert compiled.prewarm() == 2
        systolic = Deployment(kernel_ids=(1, 3), backend="systolic")
        assert systolic.prewarm() == 0


class TestRuntimeFastPath:
    """`DeviceRuntime.run` wiring: auto-engage, opt-out, fallback."""

    def _runtime(self, backend="compiled"):
        return DeviceRuntime(
            get_kernel(1),
            LaunchConfig(n_pe=8, max_query_len=64, max_ref_len=64),
            backend=backend,
        )

    def _pairs(self, n=5):
        cases = [generate_case(1, 31 + s, max_len=24) for s in range(n)]
        return [(case.query, case.reference) for case in cases]

    def test_registry_exposes_batch_backend(self):
        assert set(BATCH_BACKENDS) == {"compiled"}
        assert get_batch_backend("compiled") is compiled_align_batch
        assert get_batch_backend("systolic") is None

    def test_fast_path_matches_per_pair(self):
        runtime = self._runtime()
        pairs = self._pairs()
        recorder = TraceRecorder()
        previous = set_recorder(recorder)
        try:
            fast = runtime.run(pairs)
        finally:
            set_recorder(previous)
        slow = runtime.run(pairs, options=RunOptions(batch_exec=False))
        assert not fast.errors and not slow.errors
        assert recorder.snapshot()["counters"]["host.batched_fast_path"] == 1
        for fast_result, slow_result in zip(fast.results, slow.results):
            assert_same_result(slow_result, fast_result)
        assert fast.schedule == slow.schedule

    def test_batch_exec_true_without_batched_backend_raises(self):
        runtime = self._runtime(backend="systolic")
        with pytest.raises(ValueError, match="no batched fast path"):
            runtime.run(self._pairs(2), options=RunOptions(batch_exec=True))

    def test_fallback_isolates_failing_pair(self):
        """A poisoned batch degrades to per-pair WorkError isolation."""
        runtime = self._runtime()
        pairs = self._pairs(3)
        pairs.insert(1, ((), pairs[0][1]))  # empty query: always invalid
        outcome = runtime.run(pairs)
        assert [error.index for error in outcome.errors] == [1]
        assert outcome.errors[0].error_type == "SystolicAlignmentError"
        assert outcome.results[1] is None
        assert all(
            result is not None
            for index, result in enumerate(outcome.results)
            if index != 1
        )
