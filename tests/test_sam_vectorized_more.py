"""Tests for SAM output, the affine vectorized scorer, variant sweeps and
tiling properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.read_mapper import MappedRead, ReadMapper
from repro.core.alphabet import decode_dna
from repro.data.genome import extract_region, random_genome
from repro.data.sam import (
    FLAG_REVERSE,
    FLAG_UNMAPPED,
    parse_sam_positions,
    sam_header,
    sam_record,
    write_sam,
)
from repro.reference.classic import banded_nw_linear, gotoh_global
from repro.reference.vectorized import (
    NEG,
    _repin_floor,
    banded_nw_linear_score,
    gotoh_global_score,
)
from tests.conftest import mutated_copy, random_dna


class TestSam:
    @pytest.fixture(scope="class")
    def mapper(self):
        return ReadMapper(
            random_genome(600, seed=31, repeat_fraction=0.0), k=12
        )

    def test_header(self):
        header = sam_header("chr1", 1000)
        assert "@SQ\tSN:chr1\tLN:1000" in header

    def test_mapped_record_fields(self, mapper):
        read = extract_region(mapper.genome, 100, 50)
        hit = mapper.map(read)
        record = sam_record("r1", decode_dna(read), hit, mapper, "chr1")
        fields = record.split("\t")
        assert fields[0] == "r1"
        assert int(fields[1]) & FLAG_UNMAPPED == 0
        assert fields[2] == "chr1"
        assert int(fields[3]) == 101  # SAM is 1-based
        assert fields[5] == hit.cigar

    def test_unmapped_record(self):
        record = sam_record("r2", "ACGT", None)
        fields = record.split("\t")
        assert int(fields[1]) == FLAG_UNMAPPED
        assert fields[2] == "*"

    def test_reverse_flag(self):
        hit = MappedRead(position=10, strand="-", score=50.0,
                         cigar="25M", window_offset=2)
        record = sam_record("r3", "ACGT", hit)
        assert int(record.split("\t")[1]) & FLAG_REVERSE

    def test_write_and_parse_roundtrip(self, tmp_path, mapper):
        read = extract_region(mapper.genome, 200, 50)
        hit = mapper.map(read)
        path = tmp_path / "out.sam"
        write_sam(path, [("r1", decode_dna(read), hit),
                         ("r2", "ACGTACGTACGT", None)], mapper)
        parsed = parse_sam_positions(path)
        assert parsed[0] == ("r1", 200, True)
        assert parsed[1][2] is False


class TestVectorizedAffine:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_classic(self, seed):
        r = random_dna(18 + 6 * seed, seed + 40)
        q = mutated_copy(r, seed + 90)
        assert gotoh_global_score(q, r) == gotoh_global(q, r)

    @given(
        q=st.lists(st.integers(0, 3), min_size=1, max_size=14),
        r=st.lists(st.integers(0, 3), min_size=1, max_size=14),
    )
    @settings(max_examples=40, deadline=None)
    def test_property(self, q, r):
        assert gotoh_global_score(tuple(q), tuple(r)) == gotoh_global(q, r)


class TestSentinelHygiene:
    """Regression: NEG-sentinel values must never leak into real scores.

    Unreachable cells hold ``NEG = -1e15``; arithmetic drags the sentinel
    off its floor (``NEG + gap``), and on short bands those drifted values
    used to survive the max-reduction and surface as near-floor "scores".
    """

    def test_repin_floor_pins_drifted_sentinels(self):
        import numpy as np

        drifted = np.array([NEG + 3.0, NEG - 3.0, NEG * 0.6, -5.0, 7.0])
        pinned = _repin_floor(drifted)
        assert list(pinned) == [NEG, NEG, NEG, -5.0, 7.0]

    def test_minimal_banded_case(self):
        """The minimal leak case: band=1 forces band-edge cells whose
        clipped neighbours gather NEG on every anti-diagonal."""
        q, r = (0, 1, 2, 3), (0, 2, 2, 3)
        got = banded_nw_linear_score(q, r, band=1)
        assert got == banded_nw_linear(q, r, band=1)
        assert got > NEG / 2  # a real score, nowhere near the floor

    @pytest.mark.parametrize("band", (0, 1, 2, 5))
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_classic_banded(self, band, seed):
        r = random_dna(12 + 3 * seed, seed + 7)
        q = r if band == 0 else mutated_copy(r, seed + 70)[: len(r)]
        got = banded_nw_linear_score(q, r, band=band)
        assert got == banded_nw_linear(q, r, band=band)
        assert got > NEG / 2

    @given(
        q=st.lists(st.integers(0, 3), min_size=1, max_size=12),
        band=st.integers(1, 4),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_banded(self, q, band, data):
        delta = data.draw(st.integers(-band, band))
        size = max(1, len(q) + delta)
        r = data.draw(
            st.lists(st.integers(0, 3), min_size=size, max_size=size)
        )
        assert banded_nw_linear_score(tuple(q), tuple(r), band=band) == (
            banded_nw_linear(q, r, band=band)
        )

    def test_band_precondition(self):
        with pytest.raises(ValueError, match="band"):
            banded_nw_linear_score((0, 1, 2), (0,), band=1)

    def test_empty_and_singletons(self):
        assert banded_nw_linear_score((), (), band=0) == 0.0
        assert banded_nw_linear_score((1,), (), band=1) == -3.0
        assert banded_nw_linear_score((), (2,), band=1) == -3.0
        assert banded_nw_linear_score((1,), (1,), band=0) == 2.0


class TestScoreOnlySweep:
    """make_score_only preserves the optimum for every traceback kernel."""

    @pytest.mark.parametrize("kid", (1, 2, 3, 4, 5, 6, 7, 11, 13, 15))
    def test_score_preserved(self, kid):
        import numpy as np

        from repro.experiments.workloads import WORKLOADS
        from repro.kernels import get_kernel
        from repro.kernels.variants import make_score_only
        from repro.systolic import align

        spec = get_kernel(kid)
        q, r = WORKLOADS[kid].make_pairs(1, seed=kid + 5)[0]
        q, r = q[:24], r[:24]
        base = align(spec, q, r, n_pe=4)
        stripped = align(make_score_only(spec), q, r, n_pe=4)
        assert np.isclose(base.score, stripped.score)


class TestTilingProperty:
    @given(
        length=st.integers(80, 200),
        tile=st.sampled_from((48, 64, 96)),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=10, deadline=None)
    def test_tiled_path_always_consistent(self, length, tile, seed):
        """Any tiled alignment covers both sequences and rescoring works
        (rescore raises on an inconsistent path)."""
        from repro.kernels import get_kernel
        from repro.reference.rescore import rescore_linear
        from repro.tiling import tiled_align

        spec = get_kernel(1)
        ref = random_dna(length, seed)
        qry = mutated_copy(ref, seed + 1, error_rate=0.1)
        tiled = tiled_align(spec, qry, ref, tile_size=tile, overlap=tile // 4)
        aln = tiled.alignment
        assert aln.query_end == len(qry) and aln.ref_end == len(ref)
        p = spec.default_params
        rescore_linear(aln, qry, ref, p.match, p.mismatch, p.linear_gap)
