"""Tests for the obs metrics layer (counters, histograms, registry)."""

import json
import threading

import pytest

from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    geometric_bounds,
)


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("x")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_thread_safety(self):
        counter = Counter("x")

        def spin():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000


class TestGeometricBounds:
    def test_endpoints_and_monotonic(self):
        bounds = geometric_bounds(0.5, 512.0, 11)
        assert bounds[0] == pytest.approx(0.5)
        assert bounds[-1] == pytest.approx(512.0)
        assert bounds == sorted(bounds)

    def test_invalid(self):
        with pytest.raises(ValueError):
            geometric_bounds(0, 10, 4)
        with pytest.raises(ValueError):
            geometric_bounds(1, 10, 1)


class TestHistogram:
    def test_empty(self):
        histogram = Histogram("lat")
        assert histogram.count == 0
        assert histogram.quantile(0.5) is None
        assert histogram.snapshot() == {"count": 0}

    def test_exact_stats(self):
        histogram = Histogram("lat")
        for value in (1.0, 2.0, 3.0, 10.0):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 4
        assert snapshot["min"] == 1.0
        assert snapshot["max"] == 10.0
        assert snapshot["mean"] == pytest.approx(4.0)

    def test_quantiles_ordered_and_clamped(self):
        histogram = Histogram("lat")
        for value in range(1, 101):
            histogram.observe(float(value))
        p50 = histogram.quantile(0.50)
        p95 = histogram.quantile(0.95)
        p99 = histogram.quantile(0.99)
        assert 1.0 <= p50 <= p95 <= p99 <= 100.0
        assert p50 == pytest.approx(50.0, rel=0.25)
        assert p99 >= 80.0

    def test_overflow_bucket_clamps_to_max(self):
        histogram = Histogram("lat", bounds=[1.0, 2.0])
        histogram.observe(500.0)
        assert histogram.quantile(0.99) == 500.0

    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            Histogram("lat").quantile(1.5)

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("lat", bounds=[2.0, 1.0])


class TestRegistry:
    def test_get_or_create_identity(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_snapshot_is_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("requests_total").inc(3)
        registry.histogram("latency_ms").observe(12.5)
        text = registry.to_json()
        parsed = json.loads(text)
        assert parsed["counters"]["requests_total"] == 3
        assert parsed["histograms"]["latency_ms"]["count"] == 1
