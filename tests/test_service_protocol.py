"""Tests for the service wire protocol (JSON lines)."""

import json

import pytest

from repro.service.protocol import (
    AlignRequest,
    AlignResponse,
    ProtocolError,
    Status,
    decode_line,
    encode_line,
    error_response,
    rejection,
    response_from_result,
)


def make_request(**overrides):
    base = dict(
        request_id="r1",
        kernel_id=3,
        query=(0, 1, 2, 3),
        reference=(0, 1, 2),
        deadline_ms=25.0,
        priority=2,
    )
    base.update(overrides)
    return AlignRequest(**base)


class TestRequestRoundTrip:
    def test_dict_round_trip(self):
        request = make_request()
        assert AlignRequest.from_dict(request.to_dict()) == request

    def test_line_round_trip(self):
        request = make_request()
        assert AlignRequest.from_dict(decode_line(request.to_line())) == request

    def test_deterministic_encoding(self):
        assert make_request().to_line() == make_request().to_line()

    def test_optional_deadline_omitted(self):
        request = make_request(deadline_ms=None)
        assert "deadline_ms" not in request.to_dict()
        assert AlignRequest.from_dict(request.to_dict()).deadline_ms is None


class TestRequestValidation:
    def test_missing_field(self):
        payload = make_request().to_dict()
        del payload["query"]
        with pytest.raises(ProtocolError, match="missing"):
            AlignRequest.from_dict(payload)

    def test_empty_sequence(self):
        payload = make_request().to_dict()
        payload["reference"] = []
        with pytest.raises(ProtocolError, match="non-empty"):
            AlignRequest.from_dict(payload)

    def test_bad_kernel_type(self):
        payload = make_request().to_dict()
        payload["kernel"] = "three"
        with pytest.raises(ProtocolError, match="integer"):
            AlignRequest.from_dict(payload)

    def test_bad_deadline(self):
        payload = make_request().to_dict()
        payload["deadline_ms"] = -1
        with pytest.raises(ProtocolError, match="deadline"):
            AlignRequest.from_dict(payload)

    def test_wrong_type_field(self):
        with pytest.raises(ProtocolError, match="not an align request"):
            AlignRequest.from_dict({"type": "result"})

    def test_undecodable_line(self):
        with pytest.raises(ProtocolError, match="undecodable"):
            decode_line(b"{not json")

    def test_non_object_line(self):
        with pytest.raises(ProtocolError, match="object"):
            decode_line(b"[1,2,3]")


class TestResponseRoundTrip:
    def test_ok_round_trip(self):
        response = AlignResponse(
            request_id="r1", status=Status.OK, score=8.0, cigar="4M",
            start=(4, 4), end=(0, 0), cycles=21, latency_ms=1.5,
        )
        assert AlignResponse.from_dict(response.to_dict()) == response

    def test_rejection_and_error(self):
        for response in (rejection("r", "full"), error_response("r", "boom")):
            parsed = AlignResponse.from_dict(response.to_dict())
            assert parsed == response
            assert not parsed.ok

    def test_latency_stripped_form_is_deterministic(self):
        a = AlignResponse(
            request_id="r", status=Status.OK, score=1.0, cigar="1M",
            start=(1, 1), end=(0, 0), cycles=5, latency_ms=1.0,
        )
        b = AlignResponse(
            request_id="r", status=Status.OK, score=1.0, cigar="1M",
            start=(1, 1), end=(0, 0), cycles=5, latency_ms=99.0,
        )
        assert a.to_line(with_latency=False) == b.to_line(with_latency=False)
        assert a.to_line() != b.to_line()

    def test_response_from_engine_result(self):
        from repro.core.alphabet import encode_dna
        from repro.kernels import get_kernel
        from repro.systolic import align

        result = align(get_kernel(1), encode_dna("ACGT"), encode_dna("ACGT"))
        response = response_from_result("rq", result)
        assert response.ok
        assert response.cigar == "4M"
        assert isinstance(response.score, float)
        assert response.cycles == result.cycles.total

    def test_encode_line_is_compact_sorted_json(self):
        line = encode_line({"b": 1, "a": 2})
        assert line == b'{"a":2,"b":1}\n'
        assert json.loads(line) == {"a": 2, "b": 1}


class TestCacheAttribution:
    """The optional fingerprint/cached response fields (ISSUE 5)."""

    def _response(self, **overrides):
        base = dict(
            request_id="r", status=Status.OK, score=1.0, cigar="1M",
            start=(1, 1), end=(0, 0), cycles=5, latency_ms=2.0,
            fingerprint="ab" * 32, cached=True,
        )
        base.update(overrides)
        return AlignResponse(**base)

    def test_round_trip_with_attribution(self):
        response = self._response()
        parsed = AlignResponse.from_dict(response.to_dict())
        assert parsed == response
        assert parsed.fingerprint == "ab" * 32
        assert parsed.cached is True

    def test_absent_fields_stay_off_the_wire(self):
        payload = AlignResponse(
            request_id="r", status=Status.OK, score=1.0, cigar="1M",
            start=(1, 1), end=(0, 0), cycles=5,
        ).to_dict()
        assert "fingerprint" not in payload
        assert "cached" not in payload

    def test_fingerprint_survives_deterministic_form(self):
        """The fingerprint is a pure function of the request, so it
        belongs in the byte-identity payload."""
        payload = self._response().to_dict(with_latency=False)
        assert payload["fingerprint"] == "ab" * 32

    def test_cached_flag_is_execution_dependent(self):
        """``cached`` varies between identical requests (cold vs warm),
        so — like latency — it must not break byte-identity."""
        cold = self._response(cached=False, latency_ms=9.0)
        warm = self._response(cached=True, latency_ms=0.1)
        assert cold.to_line(with_latency=False) == warm.to_line(
            with_latency=False
        )
        assert cold.to_line() != warm.to_line()

    def test_cached_false_still_travels_in_full_form(self):
        payload = self._response(cached=False).to_dict()
        assert payload["cached"] is False

    def test_response_from_result_threads_attribution(self):
        from repro.core.alphabet import encode_dna
        from repro.kernels import get_kernel
        from repro.systolic import align

        result = align(get_kernel(1), encode_dna("ACGT"), encode_dna("ACGT"))
        response = response_from_result(
            "rq", result, fingerprint="f" * 64, cached=True
        )
        assert response.fingerprint == "f" * 64
        assert response.cached is True
