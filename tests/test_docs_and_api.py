"""Meta-tests: documentation hygiene and the README's quickstart contract."""

import ast
import importlib
import pkgutil
from pathlib import Path

import pytest

import repro

SRC = Path(repro.__file__).parent


def all_modules():
    names = ["repro"]
    for info in pkgutil.walk_packages([str(SRC)], prefix="repro."):
        names.append(info.name)
    return sorted(names)


class TestDocstrings:
    @pytest.mark.parametrize("name", all_modules())
    def test_every_module_has_docstring(self, name):
        module = importlib.import_module(name)
        assert module.__doc__ and len(module.__doc__.strip()) > 20, name

    def test_public_functions_documented(self):
        """Every public top-level def/class/method carries a docstring.

        Nested closures (initializer factories, local helpers) are
        implementation details and exempt.
        """
        missing = []

        def check(nodes, path):
            for node in nodes:
                if not isinstance(node, (ast.FunctionDef, ast.ClassDef)):
                    continue
                if node.name.startswith("_"):
                    continue
                if not ast.get_docstring(node):
                    missing.append(f"{path.name}:{node.name}")
                if isinstance(node, ast.ClassDef):
                    check(node.body, path)

        for path in SRC.rglob("*.py"):
            check(ast.parse(path.read_text()).body, path)
        assert not missing, f"undocumented public items: {missing[:10]}"


class TestReadmeQuickstart:
    def test_quickstart_snippet_runs(self):
        """The README's quickstart code must actually work."""
        from repro import LaunchConfig, align, get_kernel, synthesize
        from repro.core.alphabet import encode_dna

        kernel = get_kernel("global_affine")
        result = align(kernel, encode_dna("ACGTAC"), encode_dna("AGTACC"))
        assert result.score is not None and result.cigar

        report = synthesize(kernel, LaunchConfig(n_pe=32, n_b=16, n_k=4))
        assert "Fmax" in report.summary()

    def test_docs_exist(self):
        docs = Path(repro.__file__).parents[2] / "docs"
        expected = {
            "front_end.md", "back_end.md", "kernels.md",
            "performance_model.md", "adding_a_kernel.md", "baselines.md",
            "apps.md", "pipeline.md",
        }
        assert expected <= {p.name for p in docs.glob("*.md")}

    def test_top_level_markdown_present(self):
        root = Path(repro.__file__).parents[2]
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
            assert (root / name).exists(), name

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name
