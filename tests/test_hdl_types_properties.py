"""Seeded property tests for the HDL type layer (no hypothesis needed).

Wrap and saturate semantics of ``ap_int``/``ap_uint``/``ap_fixed`` are
cross-checked against plain-Python modular arithmetic over randomized
widths and values.  Everything is driven by fixed-seed ``random.Random``
generators (arbitrary-precision, unlike numpy's int64-bounded RNG), so
a failure reproduces exactly; widening the sweep means bumping N_SAMPLES,
not changing seeds.
"""

import random

import pytest

from repro.hdl_types import ApFixedType, ApIntType, Overflow, Rounding

N_SAMPLES = 300


def _random_values(rng, bound):
    """Integers spanning in-range, boundary and far-out-of-range regimes.

    Uses ``random.Random`` (arbitrary precision) because 64-bit widths
    produce bounds beyond numpy's int64 RNG range.
    """
    regime = rng.randrange(3)
    if regime == 0:
        return rng.randint(-bound, bound)
    if regime == 1:  # hug the representable boundary
        return rng.choice([-bound, -bound + 1, bound - 1, bound, 0])
    return rng.randint(-8 * bound, 8 * bound)


def _cases(seed):
    rng = random.Random(seed)
    for _ in range(N_SAMPLES):
        width = rng.randint(1, 64)
        value = _random_values(rng, 1 << width)
        yield width, value


class TestApIntWrap:
    def test_signed_wrap_is_twos_complement_mod(self):
        for width, value in _cases(seed=1):
            t = ApIntType(width, signed=True, overflow=Overflow.WRAP)
            span = 1 << width
            half = 1 << (width - 1)
            expected = ((value + half) % span) - half
            assert t.quantize(value) == expected, (width, value)

    def test_unsigned_wrap_is_plain_mod(self):
        for width, value in _cases(seed=2):
            t = ApIntType(width, signed=False, overflow=Overflow.WRAP)
            assert t.quantize(value) == value % (1 << width), (width, value)

    def test_wrap_result_always_in_range(self):
        for width, value in _cases(seed=3):
            for signed in (True, False):
                t = ApIntType(width, signed=signed, overflow=Overflow.WRAP)
                assert t.in_range(t.quantize(value)), (width, value, signed)

    def test_in_range_values_pass_through(self):
        rng = random.Random(4)
        for _ in range(N_SAMPLES):
            width = rng.randint(1, 64)
            for signed in (True, False):
                t = ApIntType(width, signed=signed, overflow=Overflow.WRAP)
                value = rng.randint(t.min_value, t.max_value)
                assert t.quantize(value) == value


class TestApIntSaturate:
    def test_saturate_is_plain_clamp(self):
        for width, value in _cases(seed=5):
            for signed in (True, False):
                t = ApIntType(width, signed=signed, overflow=Overflow.SATURATE)
                expected = max(t.min_value, min(t.max_value, value))
                assert t.quantize(value) == expected, (width, value, signed)

    def test_wrap_and_saturate_agree_in_range(self):
        rng = random.Random(6)
        for _ in range(N_SAMPLES):
            width = rng.randint(1, 64)
            wrap = ApIntType(width, overflow=Overflow.WRAP)
            sat = ApIntType(width, overflow=Overflow.SATURATE)
            value = rng.randint(wrap.min_value, wrap.max_value)
            assert wrap.quantize(value) == sat.quantize(value)

    def test_sentinels_survive_one_more_step(self):
        for width in range(2, 65):
            t = ApIntType(width, overflow=Overflow.SATURATE)
            assert t.in_range(t.sentinel_low() - abs(t.sentinel_low() // 2))
            assert t.in_range(t.sentinel_high() + t.sentinel_high() // 2)


def _random_fixed(rng):
    width = rng.randint(2, 32)
    int_width = rng.randint(0, width)
    return width, int_width


class TestApFixed:
    def test_quantize_idempotent(self):
        rng = random.Random(7)
        for _ in range(N_SAMPLES):
            width, int_width = _random_fixed(rng)
            t = ApFixedType(width, int_width)
            value = float(rng.uniform(-2.0 * abs(t.max_value) - 1, 2.0 * t.max_value + 1))
            q = t.quantize(value)
            assert t.quantize(q) == q, (width, int_width, value)

    def test_round_stays_within_half_resolution_in_range(self):
        rng = random.Random(8)
        for _ in range(N_SAMPLES):
            width, int_width = _random_fixed(rng)
            t = ApFixedType(width, int_width, rounding=Rounding.ROUND)
            value = float(
                rng.uniform(t.min_value + t.resolution, t.max_value - t.resolution)
            )
            assert abs(t.quantize(value) - value) <= t.resolution / 2 + 1e-12

    def test_truncate_floors_toward_negative_infinity(self):
        rng = random.Random(9)
        for _ in range(N_SAMPLES):
            width, int_width = _random_fixed(rng)
            t = ApFixedType(width, int_width, rounding=Rounding.TRUNCATE)
            value = float(
                rng.uniform(t.min_value + t.resolution, t.max_value - t.resolution)
            )
            q = t.quantize(value)
            assert q <= value + 1e-12
            assert value - q < t.resolution + 1e-12

    def test_saturate_clamps_out_of_range(self):
        rng = random.Random(10)
        for _ in range(N_SAMPLES):
            width, int_width = _random_fixed(rng)
            t = ApFixedType(width, int_width, overflow=Overflow.SATURATE)
            high = t.quantize(t.max_value * 4 + 1)
            low = t.quantize(t.min_value * 4 - 1)
            assert high == t.max_value
            assert low == t.min_value

    def test_raw_roundtrip_matches_grid(self):
        rng = random.Random(11)
        for _ in range(N_SAMPLES):
            width, int_width = _random_fixed(rng)
            t = ApFixedType(width, int_width)
            value = float(rng.uniform(t.min_value, t.max_value))
            raw = t.to_raw(value)
            assert t.from_raw(raw) == raw * t.resolution
            assert t.quantize(value) == t.from_raw(raw)

    def test_wrap_mode_matches_underlying_int_wrap(self):
        """ap_fixed WRAP must wrap its raw bits exactly like ap_int."""
        rng = random.Random(12)
        for _ in range(N_SAMPLES):
            width, int_width = _random_fixed(rng)
            t = ApFixedType(width, int_width, overflow=Overflow.WRAP)
            raw_type = ApIntType(width, signed=True, overflow=Overflow.WRAP)
            value = float(rng.uniform(4 * t.min_value - 1, 4 * t.max_value + 1))
            expected_raw = raw_type.quantize(round(value / t.resolution))
            assert t.quantize(value) == expected_raw * t.resolution

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ValueError):
            ApFixedType(0, 0)
        with pytest.raises(ValueError):
            ApFixedType(8, 9)
