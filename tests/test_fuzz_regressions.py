"""Named regression cases from differential fuzzing campaigns.

Provenance: the `repro fuzz` harness was run over every registered kernel
with seeds 0–2 (1,200 workload-realistic cases up to length 96) plus a
directed sweep of degenerate inputs (constant, periodic and
extreme-aspect-ratio sequences at PE counts 1–16).  No engine/oracle
mismatch survived — so rather than fixes, this file pins the exact case
classes those sweeps leaned on hardest, as cheap cross-implementation
checks that must keep passing when the engine or an oracle changes.

Each test is a minimal reproducer in fuzz-case form: if one starts
failing, `repro.verify_fuzz.shrink_case` on it will localise the break.

Since the harness became a three-way differential (PR 6), every
`_assert_clean` call also runs the compiled wavefront backend and
demands bit-identical scores, tracebacks and cycle reports — the
`TestThreeWayDifferential` classes below add the case classes that
sweep leaned on hardest while proving the compiled leg.
"""

import pytest

from repro.verify_fuzz import FuzzCase, case_failures


def _assert_clean(kid, query, reference, n_pe):
    case = FuzzCase(
        kernel_id=kid, case_seed=0,
        query=tuple(query), reference=tuple(reference), n_pe=n_pe,
    )
    failures = case_failures(case)
    assert failures == [], (
        f"{case.describe()} regressed: "
        + "; ".join(f"[{f.check}] {f.detail}" for f in failures)
    )


class TestConstantSequences:
    """All-same-symbol inputs: every cell ties, stressing tie-breaking."""

    @pytest.mark.parametrize("kid", (1, 2, 3, 4, 6, 7))
    def test_constant_query_longer_reference(self, kid):
        _assert_clean(kid, (0,) * 7, (0,) * 11, n_pe=3)

    @pytest.mark.parametrize("kid", (1, 2, 3, 4, 6, 7))
    def test_constant_reference_longer_query(self, kid):
        _assert_clean(kid, (0,) * 11, (0,) * 7, n_pe=4)

    @pytest.mark.parametrize("kid", (3, 4))
    def test_all_mismatch_local_kernels_score_zero_paths(self, kid):
        """Local kernels on disjoint constants: empty-alignment optimum."""
        _assert_clean(kid, (1,) * 5, (2,) * 5, n_pe=2)


class TestPeriodicSequences:
    """Repeated motifs create many co-optimal paths across chunk seams."""

    @pytest.mark.parametrize("n_pe", (1, 3, 8, 16))
    def test_alternating_vs_shifted_motif(self, n_pe):
        _assert_clean(2, (0, 1) * 6, (0, 1, 0, 1, 1) * 2, n_pe=n_pe)

    @pytest.mark.parametrize("kid", (1, 5, 7))
    def test_motif_against_reversed_motif(self, kid):
        _assert_clean(kid, (0, 1, 2, 3) * 4, (3, 2, 1, 0) * 4, n_pe=5)


class TestExtremeAspectRatios:
    """1xN and Nx1 matrices: the wavefront degenerates to a single PE."""

    @pytest.mark.parametrize("kid", (1, 2, 3, 4, 6, 7))
    def test_single_base_query(self, kid):
        _assert_clean(kid, (0,), (0, 1, 2, 3) * 4, n_pe=8)

    @pytest.mark.parametrize("kid", (1, 2, 3, 4, 6, 7))
    def test_single_base_reference(self, kid):
        _assert_clean(kid, (2,) * 16, (2,), n_pe=3)


class TestBandedSeams:
    """Band boundary crossing a chunk boundary (n_pe indivisible)."""

    @pytest.mark.parametrize("kid", (11, 12, 13))
    def test_equal_length_band_edges(self, kid):
        _assert_clean(kid, (0, 1, 2, 3) * 9, (0, 1, 3, 3) * 9, n_pe=5)


class TestThreeWayQuantization:
    """Cases where scalar-vs-vector float behaviour could diverge.

    The compiled backend quantizes whole anti-diagonals with numpy while
    the engine quantizes cell-by-cell in Python; these pin the rounding
    seams (half-even ties, truncation toward zero, fixed-point
    resolution steps) where any discrepancy would first appear.
    """

    @pytest.mark.parametrize("n_pe", (1, 2, 7))
    def test_dtw_fixed_point_rounding(self, n_pe):
        from repro.data.signals import random_complex_signal

        qry = random_complex_signal(11, seed=31)
        ref = random_complex_signal(17, seed=32)
        _assert_clean(9, qry, ref, n_pe=n_pe)

    def test_viterbi_log_domain(self):
        from repro.experiments.workloads import WORKLOADS

        qry, ref = WORKLOADS[10].make_pairs(1, seed=33)[0]
        _assert_clean(10, qry[:13], ref[:19], n_pe=6)

    def test_profile_fractional_columns(self):
        from repro.data.profiles import profile_pair

        qry, ref = profile_pair(n_cols=14, seed=34)
        _assert_clean(8, qry[:9], ref[:14], n_pe=5)


class TestThreeWayBandEdges:
    """Band clipping is coordinate arithmetic in the compiled backend but
    boundary muxes in the engine — pin the seams where they must agree."""

    @pytest.mark.parametrize("kid", (11, 13))
    def test_band_wider_than_matrix(self, kid):
        _assert_clean(kid, (0, 1, 2) * 3, (0, 2, 2) * 3, n_pe=4)

    @pytest.mark.parametrize("kid", (11, 12, 13))
    def test_wavefront_clipped_by_band(self, kid):
        # length > banding (32), so interior diagonals are clipped
        _assert_clean(kid, (0, 1, 2, 3) * 10, (0, 1, 2, 2) * 10, n_pe=7)

    def test_score_only_banded_local(self):
        _assert_clean(12, (1, 2, 3, 0) * 8, (1, 2, 0, 0) * 8, n_pe=3)


class TestThreeWayStartCellTies:
    """Co-optimal start cells: both implementations must break ties
    toward the smallest (i, j) in row-major order."""

    @pytest.mark.parametrize("kid", (3, 4, 6, 7))
    def test_constant_inputs_tie_everywhere(self, kid):
        _assert_clean(kid, (2,) * 9, (2,) * 9, n_pe=4)

    def test_overlap_suffix_prefix_tie(self):
        _assert_clean(6, (0, 1, 0, 1, 0, 1), (1, 0, 1, 0, 1, 0), n_pe=2)


class TestNonDnaSubstrates:
    """Signal/profile/protein kernels at odd PE counts (fuzz seeds 0-2)."""

    def test_dtw_short_warp(self):
        from repro.data.signals import random_complex_signal, warp_signal

        ref = random_complex_signal(18, seed=21)
        qry = warp_signal(ref, seed=22)[:13]
        _assert_clean(9, qry, ref, n_pe=3)

    def test_sdtw_subread(self):
        from repro.data.signals import sdtw_pair

        qry, ref = sdtw_pair(ref_bases=12, seed=23)
        _assert_clean(14, qry[:9], ref[:25], n_pe=5)

    def test_profile_columns(self):
        from repro.data.profiles import profile_pair

        qry, ref = profile_pair(n_cols=16, seed=24)
        _assert_clean(8, qry[:11], ref[:16], n_pe=4)

    def test_protein_blosum(self):
        from repro.data.protein import protein_pairs

        qry, ref = protein_pairs(1, length=20, seed=25)[0]
        _assert_clean(15, qry[:15], ref[:19], n_pe=3)
