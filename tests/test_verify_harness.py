"""Tests for the kernel verification harness."""

from dataclasses import replace

import pytest

from repro.experiments.workloads import WORKLOADS
from repro.kernels import KERNELS, get_kernel
from repro.verify import verify_kernel


def small_pairs(kid, n=2, length=24):
    pairs = WORKLOADS[kid].make_pairs(n, seed=kid)
    return [(q[:length], r[:length]) for q, r in pairs]


class TestVerifyKernel:
    def test_correct_kernel_passes(self):
        report = verify_kernel(get_kernel(2), small_pairs(2), n_pe_values=(1, 4))
        assert report.passed
        assert report.runs == 4
        assert "PASS" in report.summary()

    def test_score_only_kernel_passes(self):
        report = verify_kernel(get_kernel(12), small_pairs(12), n_pe_values=(3,))
        assert report.passed

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            verify_kernel(get_kernel(1), [])

    def test_broken_kernel_detected(self):
        """A deliberately wrong PE function must produce failures."""
        base = get_kernel(1)

        def broken_pe(cell):
            scores, ptr = base.pe_func(cell)
            # corrupt the recurrence: forget the gap candidate from above
            from repro.core.spec import TB_DIAG, TB_LEFT
            from repro.kernels.common import pick_best, substitution

            p = cell.params
            match = cell.diag[0] + substitution(
                cell.qry, cell.ref, p.match, p.mismatch
            )
            ins = cell.left[0] + p.linear_gap
            return pick_best([(match, TB_DIAG), (ins, TB_LEFT)]), 0

        broken = replace(base, name="broken", pe_func=lambda c: (
            (broken_pe(c)[0][0],), broken_pe(c)[1]
        ))
        # broken vs *its own* oracle still matches (same spec!), so verify
        # against the oracle of the original kernel by comparing scores.
        from repro.reference import oracle_align
        from repro.systolic import align

        q, r = small_pairs(1, n=1)[0]
        assert align(broken, q, r, n_pe=4).score != \
            oracle_align(base, q, r).score

    def test_all_kernels_verify_quickly(self):
        """One tiny pair per kernel through the harness."""
        for kid in sorted(KERNELS):
            pairs = [
                (q[:16], r[:16]) for q, r in WORKLOADS[kid].make_pairs(1, seed=kid)
            ]
            report = verify_kernel(KERNELS[kid], pairs, n_pe_values=(3,))
            assert report.passed, report.summary()
