"""Tests for GACT-style tiled long alignment."""

import pytest

from repro.kernels import get_kernel
from repro.reference.rescore import rescore_affine, rescore_linear
from repro.systolic import align
from repro.tiling import tiled_align
from repro.tiling.gact import expected_tiles
from tests.conftest import mutated_copy, random_dna


class TestExpectedTiles:
    def test_single_tile(self):
        assert expected_tiles(100, 100, tile_size=128, overlap=32) == 1

    def test_multiple_tiles(self):
        assert expected_tiles(300, 300, tile_size=128, overlap=32) == 1 + 2

    def test_invalid_overlap(self):
        with pytest.raises(ValueError):
            expected_tiles(100, 100, tile_size=64, overlap=64)


class TestTiledAlign:
    def test_short_input_single_tile_matches_untiled(self):
        spec = get_kernel(2)
        ref = random_dna(60, seed=1)
        qry = mutated_copy(ref, seed=2, error_rate=0.1)
        tiled = tiled_align(spec, qry, ref, tile_size=128, overlap=32)
        direct = align(spec, qry, ref, n_pe=32)
        assert tiled.n_tiles == 1
        assert tiled.alignment.moves == direct.alignment.moves

    def test_long_alignment_near_optimal(self):
        """Tiling with sufficient overlap recovers a near-optimal path."""
        spec = get_kernel(2)
        ref = random_dna(500, seed=3)
        qry = mutated_copy(ref, seed=4, error_rate=0.08)
        tiled = tiled_align(spec, qry, ref, tile_size=128, overlap=48)
        p = spec.default_params
        tiled_score = rescore_affine(
            tiled.alignment, qry, ref, p.match, p.mismatch,
            p.gap_open, p.gap_extend,
        )
        optimal = align(spec, qry, ref, n_pe=32,
                        max_query_len=len(qry), max_ref_len=len(ref)).score
        assert tiled_score >= 0.95 * optimal

    def test_tile_count_matches_closed_form(self):
        spec = get_kernel(2)
        ref = random_dna(400, seed=5)
        qry = mutated_copy(ref, seed=6, error_rate=0.05)
        tiled = tiled_align(spec, qry, ref, tile_size=128, overlap=32)
        # identity-dominated alignments advance ~(tile - overlap) per tile
        predicted = expected_tiles(len(qry), len(ref), 128, 32)
        assert abs(tiled.n_tiles - predicted) <= 2

    def test_path_consumes_both_sequences(self):
        spec = get_kernel(1)
        ref = random_dna(300, seed=7)
        qry = mutated_copy(ref, seed=8, error_rate=0.15)
        tiled = tiled_align(spec, qry, ref, tile_size=100, overlap=25)
        aln = tiled.alignment
        assert aln.query_end == len(qry)
        assert aln.ref_end == len(ref)
        # replay validates internal consistency (raises on mismatch)
        p = spec.default_params
        rescore_linear(aln, qry, ref, p.match, p.mismatch, p.linear_gap)

    def test_cycles_accumulate(self):
        spec = get_kernel(2)
        ref = random_dna(300, seed=9)
        qry = mutated_copy(ref, seed=10, error_rate=0.1)
        tiled = tiled_align(spec, qry, ref, tile_size=128, overlap=32)
        assert tiled.total_cycles == sum(r.total for r in tiled.tile_reports)
        assert tiled.n_tiles == len(tiled.tile_reports)

    def test_local_kernel_rejected(self):
        with pytest.raises(ValueError, match="global"):
            tiled_align(get_kernel(3), random_dna(10, 1), random_dna(10, 2))

    def test_score_only_kernel_rejected(self):
        with pytest.raises(ValueError, match="traceback"):
            tiled_align(get_kernel(14), (1, 2, 3), (1, 2, 3))

    def test_invalid_overlap(self):
        spec = get_kernel(2)
        with pytest.raises(ValueError):
            tiled_align(spec, random_dna(10, 1), random_dna(10, 2),
                        tile_size=32, overlap=32)
