"""Engine cycle accounting vs the closed-form throughput model.

The throughput model must be an *exact* closed form of what the engine
measures (given the true traceback length), otherwise Table 2 sweeps and
functional runs would disagree.
"""

import pytest

from repro.kernels import get_kernel
from repro.synth.throughput import (
    cycles_per_alignment,
    expected_traceback_length,
    reduction_cycles,
    throughput_alignments_per_sec,
)
from repro.systolic import align
from tests.conftest import mutated_copy, random_dna
from tests.test_engine_vs_oracle import workload_pair


@pytest.mark.parametrize("kid", (1, 2, 3, 5, 7, 10, 11, 12, 14))
@pytest.mark.parametrize("n_pe", (2, 5, 8))
def test_engine_total_matches_closed_form(kid, n_pe):
    spec = get_kernel(kid)
    query, reference = workload_pair(kid, seed=kid + n_pe, length=30)
    result = align(spec, query, reference, n_pe=n_pe)
    tb_len = result.alignment.aligned_length if result.alignment else 0
    predicted = cycles_per_alignment(
        spec, n_pe, len(query), len(reference), ii=1, tb_path_len=tb_len
    )
    assert result.cycles.total == predicted


def test_ii_scales_compute_only():
    spec = get_kernel(1)
    q, r = random_dna(16, 1), random_dna(16, 2)
    one = align(spec, q, r, n_pe=4, ii=1).cycles
    four = align(spec, q, r, n_pe=4, ii=4).cycles
    assert four.compute_cycles == 4 * one.compute_cycles
    assert four.init_cycles == one.init_cycles
    assert four.traceback_cycles == one.traceback_cycles


def test_banding_cuts_compute_cycles():
    banded = get_kernel(11)
    unbanded = get_kernel(1)
    q = random_dna(128, 3)
    r = random_dna(128, 4)
    cb = align(banded, q, r, n_pe=8).cycles
    cu = align(unbanded, q, r, n_pe=8).cycles
    # band 32 on a 128x128 matrix: each chunk issues ~(2*32 + rows)
    # wavefronts instead of (128 + rows)
    assert cb.compute_cycles < 0.6 * cu.compute_cycles


def test_score_only_kernel_has_no_traceback_cycles():
    spec = get_kernel(14)
    q, r = workload_pair(14, seed=9, length=30)
    cycles = align(spec, q, r, n_pe=4).cycles
    assert cycles.traceback_cycles == 0


def test_reduction_only_for_non_bottom_right():
    local = align(get_kernel(3), random_dna(12, 1), random_dna(12, 2), n_pe=4)
    global_ = align(get_kernel(1), random_dna(12, 1), random_dna(12, 2), n_pe=4)
    assert local.cycles.reduction_cycles > 0
    assert global_.cycles.reduction_cycles == 0


def test_interface_model_toggle():
    spec = get_kernel(1)
    q, r = random_dna(16, 1), random_dna(16, 2)
    with_if = align(spec, q, r, n_pe=4, model_interface=True).cycles
    without = align(spec, q, r, n_pe=4, model_interface=False).cycles
    assert with_if.interface_cycles > 0
    assert without.interface_cycles == 0
    assert with_if.compute_cycles == without.compute_cycles


def test_more_pes_fewer_cycles():
    spec = get_kernel(1)
    ref = random_dna(64, 5)
    qry = mutated_copy(ref, 6)
    totals = [
        align(spec, qry, ref, n_pe=n_pe).cycles.total for n_pe in (2, 4, 8, 16)
    ]
    assert totals == sorted(totals, reverse=True)


class TestThroughputHelpers:
    def test_throughput_formula(self):
        assert throughput_alignments_per_sec(1000, 100.0, 2) == pytest.approx(
            2 * 100e6 / 1000
        )

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            throughput_alignments_per_sec(0, 100.0, 1)
        with pytest.raises(ValueError):
            throughput_alignments_per_sec(10, -1.0, 1)
        with pytest.raises(ValueError):
            throughput_alignments_per_sec(10, 100.0, 0)

    def test_expected_tb_length_zero_for_score_only(self):
        assert expected_traceback_length(get_kernel(14), 100, 100) == 0

    def test_expected_tb_length_global_longest(self):
        global_len = expected_traceback_length(get_kernel(1), 100, 100)
        local_len = expected_traceback_length(get_kernel(3), 100, 100)
        assert global_len > local_len

    def test_reduction_cycles_rule(self):
        assert reduction_cycles(get_kernel(1), 32) == 0
        assert reduction_cycles(get_kernel(3), 32) == 7

    def test_invalid_lengths(self):
        with pytest.raises(ValueError):
            cycles_per_alignment(get_kernel(1), 4, 0, 10)
