"""Tests for the differential fuzzing harness (repro.verify_fuzz)."""

import dataclasses

import pytest

from repro.core.spec import StartRule
from repro.kernels import get_kernel, kernel_ids
from repro.systolic.engine import align
from repro.verify_fuzz import (
    FuzzCase,
    case_failures,
    corpus_digest,
    fuzz,
    generate_case,
    make_corpus,
    run_corpus,
    shrink_case,
)


class TestGeneration:
    def test_case_is_deterministic(self):
        assert generate_case(1, 77, max_len=16) == generate_case(1, 77, max_len=16)

    def test_lengths_within_bounds(self):
        for seed in range(30):
            case = generate_case(3, seed, max_len=12)
            assert 1 <= len(case.query) <= 12
            assert 1 <= len(case.reference) <= 12

    @pytest.mark.parametrize("kid", (11, 13))
    def test_banded_global_lengths_respect_band(self, kid):
        spec = get_kernel(kid)
        assert spec.start_rule is StartRule.BOTTOM_RIGHT
        for seed in range(20):
            case = generate_case(kid, seed, max_len=24)
            assert abs(len(case.query) - len(case.reference)) <= spec.banding

    def test_every_kernel_generates(self):
        for kid in kernel_ids():
            case = generate_case(kid, case_seed=kid, max_len=10)
            assert case.kernel_id == kid
            assert case.n_pe >= 1

    def test_corpus_is_byte_identical_for_same_seed(self):
        a = make_corpus(kernels=(1, 9, 15), cases_per_kernel=4, seed=5)
        b = make_corpus(kernels=(1, 9, 15), cases_per_kernel=4, seed=5)
        assert a == b
        assert corpus_digest(a) == corpus_digest(b)

    def test_corpus_changes_with_seed(self):
        a = make_corpus(kernels=(1,), cases_per_kernel=4, seed=0)
        b = make_corpus(kernels=(1,), cases_per_kernel=4, seed=1)
        assert corpus_digest(a) != corpus_digest(b)

    def test_invalid_case_count(self):
        with pytest.raises(ValueError, match="cases_per_kernel"):
            make_corpus(cases_per_kernel=0)


class TestChecks:
    def test_clean_case_has_no_failures(self):
        case = generate_case(1, 3, max_len=16)
        assert case_failures(case) == []

    def test_engine_crash_is_a_finding(self):
        def crashing_engine(*_args, **_kwargs):
            raise RuntimeError("synthetic engine crash")

        case = generate_case(1, 3, max_len=16)
        failures = case_failures(case, align_fn=crashing_engine)
        assert [f.check for f in failures] == ["engine_exception"]
        assert "synthetic engine crash" in failures[0].detail


def _buggy_align(spec, query, reference, **kwargs):
    """A fault-injected engine: misscore whenever the query has >= 3 symbols."""
    result = align(spec, query, reference, **kwargs)
    if len(query) >= 3:
        return dataclasses.replace(result, score=result.score + 1)
    return result


class TestShrinking:
    def test_forced_mismatch_shrinks_to_minimal_reproducer(self):
        corpus = [
            FuzzCase(
                kernel_id=1, case_seed=0,
                query=(0, 1, 2, 3, 0, 1, 2, 3),
                reference=(0, 1, 2, 2, 0, 1, 3, 3),
                n_pe=4,
            )
        ]
        report = run_corpus(corpus, align_fn=_buggy_align)
        assert not report.passed
        assert len(report.mismatches) == 1
        mismatch = report.mismatches[0]
        assert mismatch.failure.check == "engine_score"
        # The injected bug fires iff |Q| >= 3, so the minimal reproducer
        # is exactly a 3-symbol query against a 1-symbol reference.
        assert len(mismatch.shrunk_query) == 3
        assert len(mismatch.shrunk_reference) == 1
        assert mismatch.shrink_rounds > 0
        assert "shrunk to" in report.summary()

    def test_shrink_respects_band_constraint(self):
        spec = get_kernel(11)
        case = generate_case(11, 5, max_len=24)

        def always_fails(_candidate):
            return True

        minimal, _rounds = shrink_case(case, always_fails)
        assert abs(len(minimal.query) - len(minimal.reference)) <= spec.banding
        assert len(minimal.query) >= 1 and len(minimal.reference) >= 1

    def test_shrink_stops_at_local_minimum(self):
        case = FuzzCase(1, 0, (0, 1), (0, 1), n_pe=1)

        def never_fails(_candidate):
            return False

        minimal, rounds = shrink_case(case, never_fails)
        assert minimal == case and rounds == 0


class TestFuzzEntryPoint:
    def test_fixed_mode_counts(self):
        report = fuzz(kernels=(1, 3), cases_per_kernel=3, seed=0, max_len=10)
        assert report.total_cases == 6
        assert report.cases_by_kernel == {1: 3, 3: 3}
        assert report.passed, report.summary()

    def test_budget_mode_runs_at_least_one_round(self):
        report = fuzz(
            kernels=(1,), cases_per_kernel=1, seed=0, max_len=8,
            budget_s=0.001,
        )
        assert report.total_cases >= 1

    def test_summary_mentions_every_kernel(self):
        report = fuzz(kernels=(1, 9), cases_per_kernel=1, seed=0, max_len=8)
        assert "global_linear" in report.summary()
        assert "dtw" in report.summary()
