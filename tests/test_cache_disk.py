"""DiskStore: persistence, crash-safe replay, compaction (repro.cache.disk).

The persistent tier's contract is that any sequence of puts followed by
a process death — even mid-append — replays to a consistent index: all
durably framed records survive, the torn tail is detected and dropped,
and compaction never loses a live entry no matter where it is
interrupted.
"""

import pytest

from repro.cache.disk import _HEADER, MAX_KEY_BYTES, DiskStore


class TestRoundtrip:
    def test_put_get_overwrite(self, tmp_path):
        with DiskStore(str(tmp_path)) as store:
            store.put("k1", b"payload-one")
            store.put("k2", b"payload-two")
            store.put("k1", b"payload-one-v2")  # last write wins
            assert store.get("k1") == b"payload-one-v2"
            assert store.get("k2") == b"payload-two"
            assert store.get("missing") is None
            assert len(store) == 2
            assert store.keys() == ["k1", "k2"]

    def test_reopen_warm_starts(self, tmp_path):
        with DiskStore(str(tmp_path)) as store:
            store.put("alpha", b"A" * 100)
            store.put("beta", b"B" * 100)
        with DiskStore(str(tmp_path)) as reopened:
            assert reopened.get("alpha") == b"A" * 100
            assert reopened.get("beta") == b"B" * 100
            stats = reopened.stats()
            assert stats.replayed_records == 2
            assert stats.torn_records == 0

    def test_shard_rotation(self, tmp_path):
        store = DiskStore(str(tmp_path), shard_bytes=256)
        for k in range(20):
            store.put(f"key-{k:03d}", bytes([k]) * 64)
        assert store.stats().shards > 1
        store.close()
        with DiskStore(str(tmp_path), shard_bytes=256) as reopened:
            for k in range(20):
                assert reopened.get(f"key-{k:03d}") == bytes([k]) * 64

    def test_oversize_key_rejected(self, tmp_path):
        with DiskStore(str(tmp_path)) as store:
            with pytest.raises(ValueError, match="key too long"):
                store.put("x" * (MAX_KEY_BYTES + 1), b"v")


class TestCrashSafety:
    def _shards(self, tmp_path):
        return sorted(tmp_path.glob("shard-*.log"))

    def test_truncate_mid_record_replays_prefix(self, tmp_path):
        """A torn tail (crash mid-append) is dropped; everything durably
        framed before it survives, and the file is truncated clean."""
        with DiskStore(str(tmp_path)) as store:
            store.put("good-1", b"G" * 50)
            store.put("good-2", b"H" * 50)
            store.put("torn", b"T" * 50)
        shard = self._shards(tmp_path)[0]
        data = shard.read_bytes()
        shard.write_bytes(data[:-20])  # tear the last record mid-payload
        with DiskStore(str(tmp_path)) as reopened:
            assert reopened.get("good-1") == b"G" * 50
            assert reopened.get("good-2") == b"H" * 50
            assert reopened.get("torn") is None
            stats = reopened.stats()
            assert stats.replayed_records == 2
            assert stats.torn_records == 1
        # The torn bytes were truncated away: a fresh append must land on
        # a clean boundary and the next replay sees no tear.
        with DiskStore(str(tmp_path)) as again:
            again.put("after-crash", b"N")
        with DiskStore(str(tmp_path)) as final:
            assert final.get("after-crash") == b"N"
            assert final.stats().torn_records == 0

    def test_truncate_mid_header_replays_prefix(self, tmp_path):
        with DiskStore(str(tmp_path)) as store:
            store.put("whole", b"W" * 30)
            store.put("torn", b"T" * 30)
        shard = self._shards(tmp_path)[0]
        data = shard.read_bytes()
        record = _HEADER.size + len("torn") + 30
        shard.write_bytes(data[:len(data) - record + 3])  # 3 header bytes
        with DiskStore(str(tmp_path)) as reopened:
            assert reopened.get("whole") == b"W" * 30
            assert reopened.stats().torn_records == 1

    def test_corrupt_crc_stops_replay(self, tmp_path):
        with DiskStore(str(tmp_path)) as store:
            store.put("ok", b"O" * 30)
            store.put("flip", b"F" * 30)
        shard = self._shards(tmp_path)[0]
        data = bytearray(shard.read_bytes())
        data[-1] ^= 0xFF  # flip one payload byte of the last record
        shard.write_bytes(bytes(data))
        with DiskStore(str(tmp_path)) as reopened:
            assert reopened.get("ok") == b"O" * 30
            assert reopened.get("flip") is None


class TestCompaction:
    def test_compact_drops_stale_records(self, tmp_path):
        store = DiskStore(str(tmp_path))
        for _ in range(10):
            store.put("hot", b"X" * 100)  # 9 stale records
        store.put("other", b"Y" * 100)
        freed = store.compact()
        assert freed > 0
        assert store.get("hot") == b"X" * 100
        assert store.get("other") == b"Y" * 100
        stats = store.stats()
        assert stats.shards == 1
        assert stats.compactions == 1
        assert stats.file_bytes < 1100  # only 2 live records remain
        store.close()

    def test_compacted_store_replays_identically(self, tmp_path):
        store = DiskStore(str(tmp_path), shard_bytes=256)
        for k in range(12):
            store.put(f"k{k % 4}", bytes([k]) * 64)
        store.compact()
        store.put("post", b"P")  # appends to the compacted shard
        store.close()
        with DiskStore(str(tmp_path), shard_bytes=256) as reopened:
            assert len(reopened) == 5
            for k in range(4):
                assert reopened.get(f"k{k}") == bytes([8 + k]) * 64
            assert reopened.get("post") == b"P"

    def test_compact_empty_store(self, tmp_path):
        with DiskStore(str(tmp_path)) as store:
            assert store.compact() == 0
            assert len(store) == 0

    def test_clear_deletes_everything(self, tmp_path):
        store = DiskStore(str(tmp_path))
        store.put("a", b"1")
        store.put("b", b"2")
        assert store.clear() == 2
        assert store.get("a") is None
        store.put("c", b"3")  # store stays usable after clear
        assert store.get("c") == b"3"
        store.close()
