"""Tests for KernelSpec validation and helpers."""

from dataclasses import dataclass

import numpy as np
import pytest

from repro.core.alphabet import DNA
from repro.core.spec import (
    EndRule,
    KernelSpec,
    Objective,
    StartRule,
    TracebackSpec,
    band_contains,
    wrap_params,
)
from repro.core.trace import DatapathGraph, TracedTable, TracedValue
from repro.hdl_types import ap_int
from repro.kernels.common import linear_tb, zero_init
from repro.kernels.global_linear import SPEC as NW_SPEC


@dataclass(frozen=True)
class _Params:
    match: int = 1
    table: tuple = ((1, 2), (3, 4))


def _pe(cell):
    return (cell.diag[0],), 0


def make_spec(**overrides):
    base = dict(
        name="toy",
        kernel_id=99,
        alphabet=DNA,
        score_type=ap_int(16),
        n_layers=1,
        objective=Objective.MAXIMIZE,
        pe_func=_pe,
        init_row=zero_init(1),
        init_col=zero_init(1),
        default_params=_Params(),
        start_rule=StartRule.BOTTOM_RIGHT,
    )
    base.update(overrides)
    return KernelSpec(**base)


class TestValidation:
    def test_minimal_spec_ok(self):
        spec = make_spec()
        assert not spec.has_traceback

    def test_bad_n_layers(self):
        with pytest.raises(ValueError):
            make_spec(n_layers=0)

    def test_bad_score_layer(self):
        with pytest.raises(ValueError):
            make_spec(score_layer=1)

    def test_bad_banding(self):
        with pytest.raises(ValueError):
            make_spec(banding=0)

    def test_traceback_requires_transition(self):
        with pytest.raises(ValueError):
            make_spec(traceback=TracebackSpec(end=EndRule.TOP_LEFT))

    def test_transition_requires_traceback(self):
        with pytest.raises(ValueError):
            make_spec(tb_transition=linear_tb)

    def test_ptr_bits_minimum(self):
        with pytest.raises(ValueError):
            make_spec(tb_ptr_bits=1)


class TestObjectiveHelpers:
    def test_max_better(self):
        spec = make_spec()
        assert spec.better(2, 1) and not spec.better(1, 2)

    def test_min_better(self):
        spec = make_spec(objective=Objective.MINIMIZE)
        assert spec.better(1, 2) and not spec.better(2, 1)

    def test_sentinel_sign(self):
        assert make_spec().sentinel() < 0
        assert make_spec(objective=Objective.MINIMIZE).sentinel() > 0

    def test_quantize_delegates(self):
        spec = make_spec()
        assert spec.quantize(70000) == ap_int(16).quantize(70000)


class TestInitValidation:
    def test_init_shape_checked(self):
        def bad_init(_params, length):
            return np.zeros((length, 2))

        spec = make_spec(init_row=bad_init)
        with pytest.raises(ValueError, match="init_row"):
            spec.init_row_scores(spec.default_params, 5)

    def test_init_ok(self):
        spec = make_spec()
        scores = spec.init_col_scores(spec.default_params, 5)
        assert scores.shape == (5, 1)


class TestWrapParams:
    def test_scalar_field_traced(self):
        g = DatapathGraph()
        mirror = wrap_params(_Params(), g, 16)
        assert isinstance(mirror.match, TracedValue)

    def test_table_field_traced(self):
        g = DatapathGraph()
        mirror = wrap_params(_Params(), g, 16)
        assert isinstance(mirror.table, TracedTable)
        assert mirror.table.shape == (2, 2)

    def test_non_dataclass_rejected(self):
        with pytest.raises(TypeError):
            wrap_params({"match": 1}, DatapathGraph(), 16)

    def test_unsupported_field_rejected(self):
        @dataclass
        class Bad:
            thing: object = object()

        with pytest.raises(TypeError):
            wrap_params(Bad(), DatapathGraph(), 16)


class TestTraceDatapath:
    def test_real_kernel_traces(self):
        graph = NW_SPEC.trace_datapath()
        assert graph.critical_depth > 0

    def test_layer_count_checked(self):
        spec = make_spec(n_layers=2, init_row=zero_init(2), init_col=zero_init(2))
        # _pe returns one layer but spec declares two
        with pytest.raises(ValueError, match="layers"):
            spec.trace_datapath()


class TestBandContains:
    def test_unbanded_always_true(self):
        assert band_contains(None, 0, 10**6)

    @pytest.mark.parametrize(
        "i,j,inside", [(5, 5, True), (5, 8, True), (5, 9, False), (9, 5, False)]
    )
    def test_band_boundary(self, i, j, inside):
        assert band_contains(3, i, j) is inside
