"""CacheStack and CachedRuntime: the tiers wired around the engine.

Pins the facade's contracts: the entry codec round-trips every result
shape, a lookup walks memory → disk → engine with disk hits promoted,
and :class:`CachedRuntime` is observably identical to the uncached
:class:`DeviceRuntime` — same results, same errors — apart from being
served from the tiers when warm.
"""

import threading
import time

import pytest

from repro.cache import (
    CacheConfig,
    CacheStack,
    CachedRuntime,
    decode_result,
    encode_result,
)
from repro.host import DeviceRuntime
from repro.kernels import get_kernel
from repro.synth import LaunchConfig
from tests.conftest import mutated_copy, random_dna


def _spin_until(predicate, deadline_s: float = 30.0):
    """Busy-wait for ``predicate()`` with a hard deadline (test safety)."""
    deadline = time.monotonic() + deadline_s
    while not predicate():
        if time.monotonic() > deadline:  # pragma: no cover
            raise AssertionError("condition not reached before deadline")
        time.sleep(0.001)


def small_config(**overrides):
    base = dict(n_pe=8, n_b=2, n_k=1, max_query_len=64, max_ref_len=64)
    base.update(overrides)
    return LaunchConfig(**base)


def make_pairs(n, length=24, seed=0):
    out = []
    for k in range(n):
        ref = random_dna(length, seed=seed + k)
        out.append((mutated_copy(ref, seed + 1000 + k)[:length], ref))
    return out


def cached_runtime(stack=None, kernel_id=1):
    stack = stack or CacheStack(CacheConfig())
    return CachedRuntime(
        DeviceRuntime(get_kernel(kernel_id), small_config()), stack
    )


class TestCodec:
    @pytest.mark.parametrize("kernel_id", (1, 3, 7))
    def test_roundtrip_equals_original(self, kernel_id):
        runtime = DeviceRuntime(get_kernel(kernel_id), small_config())
        result = runtime.run(make_pairs(1)).results[0]
        decoded = decode_result(encode_result(result))
        assert decoded.score == result.score
        assert decoded.start == result.start
        assert decoded.end == result.end
        assert decoded.cigar == result.cigar
        assert decoded.cycles.total == result.cycles.total

    def test_encoding_is_deterministic(self):
        runtime = DeviceRuntime(get_kernel(1), small_config())
        pair = make_pairs(1)[0]
        one = encode_result(runtime.run([pair]).results[0])
        two = encode_result(runtime.run([pair]).results[0])
        assert one == two

    def test_unknown_codec_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            decode_result(b'{"v":999}')


class TestCacheStack:
    def test_tier_walk_and_promotion(self, tmp_path):
        stack = CacheStack(CacheConfig(directory=str(tmp_path)))
        runtime = cached_runtime(stack)
        pair = make_pairs(1)[0]
        key = runtime.pair_key(*pair)

        calls = []

        def compute():
            calls.append(1)
            return runtime.runtime.run([pair]).results[0]

        _, source = stack.get_or_compute(key, compute)
        assert source == "engine"
        _, source = stack.get_or_compute(key, compute)
        assert source == "memory"
        # Drop the memory tier: the next lookup must hit disk and promote.
        stack.memory.clear()
        result, source = stack.get_or_compute(key, compute)
        assert source == "disk"
        _, source = stack.get_or_compute(key, compute)
        assert source == "memory"
        assert len(calls) == 1
        stack.close()

    def test_memory_only_stack_has_no_disk_tier(self):
        stack = CacheStack(CacheConfig())
        assert stack.disk is None
        assert stack.stats()["disk"] is None
        assert stack.clear() == 0

    def test_store_charges_encoded_bytes(self):
        stack = CacheStack(CacheConfig())
        runtime = cached_runtime(stack)
        pair = make_pairs(1)[0]
        result = runtime.runtime.run([pair]).results[0]
        stack.store("some-key", result)
        assert stack.memory.bytes_used == len(encode_result(result))


class TestCachedRuntime:
    def test_results_identical_to_uncached(self):
        plain = DeviceRuntime(get_kernel(1), small_config())
        wrapped = CachedRuntime(
            DeviceRuntime(get_kernel(1), small_config()),
            CacheStack(CacheConfig()),
        )
        batch = make_pairs(6)
        baseline = plain.run(batch)
        cold = wrapped.run(batch)
        warm = wrapped.run(batch)
        for ours, theirs in zip(cold.results, baseline.results):
            assert encode_result(ours) == encode_result(theirs)
        for ours, theirs in zip(warm.results, baseline.results):
            assert encode_result(ours) == encode_result(theirs)
        assert cold.cached == [False] * 6
        assert warm.cached == [True] * 6
        assert warm.hit_rate == 1.0
        assert cold.fingerprints == warm.fingerprints

    def test_within_batch_duplicates_run_once(self):
        wrapped = cached_runtime()
        pair = make_pairs(1)[0]
        outcome = wrapped.run([pair, pair, pair])
        assert outcome.cached == [False, True, True]
        assert len(set(outcome.fingerprints)) == 1
        # Exactly one engine execution: one flight, nothing coalesced
        # (in-batch duplicates resolve through the leader, not waits).
        assert wrapped.stack.flights.stats().flights == 1

    def test_per_pair_errors_preserved(self):
        """A too-long pair stays a structured per-item error, index-true."""
        wrapped = cached_runtime()
        good = make_pairs(1)[0]
        too_long = make_pairs(1, length=100, seed=77)[0]
        outcome = wrapped.run([good, too_long, good])
        assert outcome.results[1] is None
        assert [e.index for e in outcome.errors] == [1]
        assert "tiling" in outcome.errors[0].message
        assert outcome.cached == [False, False, True]
        # The failed pair must not be cached: it reruns (and refails).
        again = wrapped.run([too_long])
        assert [e.index for e in again.errors] == [0]
        assert again.cached == [False]

    def test_warm_restart_from_disk(self, tmp_path):
        batch = make_pairs(4)
        first = cached_runtime(
            CacheStack(CacheConfig(directory=str(tmp_path)))
        )
        cold = first.run(batch)
        first.stack.close()
        # A brand-new stack over the same directory — the "restarted
        # process" — must serve the whole batch without engine work.
        second = cached_runtime(
            CacheStack(CacheConfig(directory=str(tmp_path)))
        )
        warm = second.run(batch)
        assert warm.cached == [True] * 4
        for ours, theirs in zip(warm.results, cold.results):
            assert encode_result(ours) == encode_result(theirs)
        assert second.stack.flights.stats().flights == 0
        second.stack.close()

    def test_cross_thread_single_flight(self):
        """Two threads running the identical batch share engine work.

        Thread A's engine execution is held open until thread B has
        joined its flights, so the coalescing path is exercised
        deterministically: every pair reaches the engine exactly once
        across both threads, and B's batch reports all-cached.
        """
        stack = CacheStack(CacheConfig())
        wrapped = cached_runtime(stack)
        inner = wrapped.runtime
        batch = make_pairs(3, seed=50)
        real_run = inner.run
        engine_pair_counts = []
        leader_entered = threading.Event()
        release = threading.Event()

        def slow_run(pairs, options=None, **legacy):
            engine_pair_counts.append(len(pairs))
            leader_entered.set()
            assert release.wait(timeout=30.0)
            return real_run(pairs, options=options, **legacy)

        inner.run = slow_run
        outcomes = {}

        def worker(name):
            outcomes[name] = wrapped.run(batch)

        thread_a = threading.Thread(target=worker, args=("a",))
        thread_a.start()
        assert leader_entered.wait(timeout=30.0)
        thread_b = threading.Thread(target=worker, args=("b",))
        thread_b.start()
        # B probes (miss), joins A's open flights, then parks; releasing
        # lets A compute and settle, unblocking B's waits.
        _spin_until(lambda: stack.flights.stats().coalesced >= 3)
        release.set()
        thread_a.join(timeout=60.0)
        thread_b.join(timeout=60.0)
        assert set(outcomes) == {"a", "b"}
        for ours, theirs in zip(
            outcomes["a"].results, outcomes["b"].results
        ):
            assert encode_result(ours) == encode_result(theirs)
        assert sum(engine_pair_counts) == 3  # one engine pass over the keys
        assert outcomes["a"].cached == [False] * 3
        assert outcomes["b"].cached == [True] * 3
        stats = stack.flights.stats()
        assert stats.flights == 3
        assert stats.coalesced == 3

    def test_runtime_surface_passthrough(self):
        wrapped = cached_runtime()
        assert wrapped.spec is wrapped.runtime.spec
        assert wrapped.config is wrapped.runtime.config
        assert wrapped.params is wrapped.runtime.params
        assert wrapped.report is wrapped.runtime.report

    def test_different_kernels_never_share_keys(self):
        stack = CacheStack(CacheConfig())
        one = cached_runtime(stack, kernel_id=1)
        other = cached_runtime(stack, kernel_id=3)
        pair = make_pairs(1)[0]
        assert one.pair_key(*pair) != other.pair_key(*pair)
