"""End-to-end tests of the experiment harnesses against the paper's claims.

These check the *shape* requirements: who wins, by roughly what factor,
where scaling saturates — not absolute tool numbers (see EXPERIMENTS.md).
"""

import pytest

from repro.experiments import fig3, fig4, fig5, fig6, hls_cmp, table2
from repro.experiments.paper_values import (
    FIG6_CUDASW_SPEEDUP,
    FIG6_EMBOSS_SPEEDUP,
    FIG6_GASAL2_BAND,
    FIG6_MINIMAP2_SPEEDUP,
    FIG6_SEQAN_BAND,
    HLS_BASELINE_GAIN_PCT,
    TABLE2,
)


class TestTable2:
    @pytest.fixture(scope="class")
    def rows(self):
        return table2.build_table2()

    def test_all_kernels_present(self, rows):
        assert [r.kernel_id for r in rows] == list(range(1, 16))

    def test_throughput_within_2x_of_paper(self, rows):
        for r in rows:
            ratio = r.alignments_per_sec / r.paper_alignments_per_sec
            assert 0.5 < ratio < 2.0, f"kernel #{r.kernel_id}: {ratio:.2f}x"

    def test_throughput_ordering_preserved(self, rows):
        """Fast kernels stay fast: rank correlation with the paper."""
        model = sorted(rows, key=lambda r: r.alignments_per_sec)
        paper = sorted(rows, key=lambda r: r.paper_alignments_per_sec)
        model_rank = {r.kernel_id: i for i, r in enumerate(model)}
        paper_rank = {r.kernel_id: i for i, r in enumerate(paper)}
        disagreements = sum(
            abs(model_rank[k] - paper_rank[k]) > 3 for k in model_rank
        )
        assert disagreements <= 2

    def test_fmax_matches_paper(self, rows):
        for r in rows:
            assert r.fmax_mhz == TABLE2[r.kernel_id].fmax_mhz

    def test_profile_ii_is_four(self, rows):
        assert next(r for r in rows if r.kernel_id == 8).ii == 4

    def test_dsp_heavy_kernels(self, rows):
        by_id = {r.kernel_id: r for r in rows}
        assert by_id[8].dsp_pct > 20     # paper: 28.11 %
        assert by_id[9].dsp_pct > 1      # paper: 2.84 %
        assert by_id[1].dsp_pct < 0.1

    def test_render(self, rows):
        text = table2.render(rows)
        assert "global_linear" in text and "aln/s" in text


class TestFig3:
    def test_npe_scaling_saturates(self):
        points = fig3.sweep_npe(1, n_pe_values=(1, 2, 4, 8, 16, 32, 64))
        thr = [p.alignments_per_sec for p in points]
        assert all(b > a for a, b in zip(thr, thr[1:]))  # monotone
        early_gain = thr[1] / thr[0]
        late_gain = thr[-1] / thr[-2]
        assert early_gain > 1.7      # near-perfect at small N_PE
        assert late_gain < 1.5       # saturating at large N_PE

    def test_nb_scaling_linear(self):
        points = fig3.sweep_nb(1, n_b_values=(1, 2, 4, 8, 16))
        thr = [p.alignments_per_sec for p in points]
        for i, p in enumerate(points):
            assert thr[i] == pytest.approx(thr[0] * p.n_b, rel=1e-6)

    def test_resources_scale_with_nb(self):
        points = fig3.sweep_nb(1, n_b_values=(1, 2, 4))
        assert points[2].lut_pct == pytest.approx(4 * points[0].lut_pct)
        assert points[2].bram_pct == pytest.approx(4 * points[0].bram_pct)

    def test_dsp_flat_for_global_linear(self):
        points = fig3.sweep_npe(1, n_pe_values=(8, 16, 32))
        assert points[0].dsp_pct == points[-1].dsp_pct

    def test_dsp_scales_for_dtw(self):
        points = fig3.sweep_npe(9, n_pe_values=(8, 16, 32))
        assert points[-1].dsp_pct > 3 * points[0].dsp_pct

    def test_bram_dip_at_64(self):
        points = {p.n_pe: p for p in fig3.sweep_npe(1, n_pe_values=(32, 64))}
        assert points[64].bram_pct < points[32].bram_pct

    def test_dtw_nb_cap_near_paper(self):
        assert 15 <= fig3.dtw_nb_cap() <= 30  # paper: 24


class TestFig4:
    @pytest.fixture(scope="class")
    def comparisons(self):
        return fig4.build_fig4()

    def test_rtl_wins_every_panel(self, comparisons):
        for c in comparisons:
            assert c.rtl_aln_per_sec > c.dp_hls_aln_per_sec

    def test_margins_close_to_paper(self, comparisons):
        for c in comparisons:
            assert abs(c.margin_pct - c.paper_margin_pct) < 3.0, c.baseline

    def test_bsw_margin_largest(self, comparisons):
        by_name = {c.baseline: c for c in comparisons}
        assert by_name["BSW"].margin_pct > by_name["GACT"].margin_pct
        assert by_name["BSW"].margin_pct > by_name["SquiggleFilter"].margin_pct

    def test_resources_comparable(self, comparisons):
        for c in comparisons:
            assert 0.8 < c.rtl_lut / c.dp_hls_lut <= 1.0
            assert c.rtl_ff == pytest.approx(c.dp_hls_ff)


class TestFig5:
    @pytest.fixture(scope="class")
    def points(self):
        return fig5.build_fig5()

    def test_curves_parallel(self, points):
        """Throughput ratio DP-HLS/GACT stays roughly constant over N_PE."""
        ratios = [p.dp_hls_aln_per_sec / p.gact_aln_per_sec for p in points]
        assert max(ratios) - min(ratios) < 0.12

    def test_resource_gap_constant_fraction(self, points):
        gaps = [p.dp_hls_lut / p.gact_lut for p in points]
        assert max(gaps) - min(gaps) < 0.05

    def test_both_scale_with_npe(self, points):
        assert points[-1].dp_hls_aln_per_sec > 2 * points[0].dp_hls_aln_per_sec
        assert points[-1].gact_aln_per_sec > 2 * points[0].gact_aln_per_sec


class TestFig6:
    @pytest.fixture(scope="class")
    def cpu(self):
        return fig6.build_cpu_panel()

    @pytest.fixture(scope="class")
    def gpu(self):
        return fig6.build_gpu_panel()

    def test_dp_hls_wins_everywhere(self, cpu, gpu):
        for row in cpu + gpu:
            assert row.speedup > 1.0, f"{row.baseline} #{row.kernel_id}"

    def test_seqan_band(self, cpu):
        seqan = [r for r in cpu if r.baseline == "SeqAn3"]
        lo, hi = FIG6_SEQAN_BAND
        for r in seqan:
            assert lo * 0.9 <= r.speedup <= hi * 1.1, f"#{r.kernel_id}: {r.speedup}"

    def test_minimap2_speedup(self, cpu):
        row = next(r for r in cpu if r.baseline == "Minimap2")
        assert row.speedup == pytest.approx(FIG6_MINIMAP2_SPEEDUP, rel=0.25)

    def test_emboss_speedup(self, cpu):
        row = next(r for r in cpu if r.baseline == "EMBOSS Water")
        assert row.speedup == pytest.approx(FIG6_EMBOSS_SPEEDUP, rel=0.25)

    def test_gasal2_band(self, gpu):
        lo, hi = FIG6_GASAL2_BAND
        gasal = [r for r in gpu if r.baseline == "GASAL2"]
        assert len(gasal) == 3
        assert min(r.speedup for r in gasal) == pytest.approx(lo, rel=0.2)
        assert max(r.speedup for r in gasal) == pytest.approx(hi, rel=0.2)

    def test_cudasw_speedup(self, gpu):
        row = next(r for r in gpu if r.baseline == "CUDASW++4.0")
        assert row.speedup == pytest.approx(FIG6_CUDASW_SPEEDUP, rel=0.15)

    def test_render(self):
        assert "SeqAn3" in fig6.render()


class TestHlsComparison:
    def test_gain_close_to_paper(self):
        c = hls_cmp.build_hls_comparison()
        assert c.gain_pct > 0
        assert abs(c.gain_pct - HLS_BASELINE_GAIN_PCT) < 8.0

    def test_render(self):
        assert "Vitis" in hls_cmp.render()
