"""Tests for the ASCII chart renderers."""

import pytest

from repro.experiments.plots import (
    bar_chart,
    line_chart,
    plot_fig3_throughput,
    plot_fig5,
    plot_fig6,
)


class TestLineChart:
    def test_basic_render(self):
        text = line_chart({"s": [(1, 1), (2, 2), (3, 3)]}, width=20, height=5)
        assert "o" in text
        assert text.count("\n") >= 6

    def test_multiple_series_glyphs(self):
        text = line_chart(
            {"a": [(1, 1), (2, 2)], "b": [(1, 2), (2, 1)]},
            width=20, height=5,
        )
        assert "o=a" in text and "x=b" in text
        assert "o" in text and "x" in text

    def test_log_scales_label(self):
        text = line_chart(
            {"s": [(1, 10), (10, 100)]}, log_x=True, log_y=True
        )
        assert "(log x)" in text and "(log y)" in text

    def test_constant_series_ok(self):
        text = line_chart({"s": [(1, 5), (2, 5)]})
        assert "o" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart({})
        with pytest.raises(ValueError):
            line_chart({"s": []})

    def test_nonpositive_log_rejected(self):
        with pytest.raises(ValueError):
            line_chart({"s": [(0, 1)]}, log_x=True)

    def test_grid_dimensions(self):
        text = line_chart({"s": [(1, 1), (9, 9)]}, width=30, height=7)
        plot_rows = [ln for ln in text.split("\n") if ln.startswith("  |")]
        assert len(plot_rows) == 7
        assert all(len(ln) == 3 + 30 for ln in plot_rows)


class TestBarChart:
    def test_scaling(self):
        text = bar_chart({"a": 1.0, "b": 2.0}, width=10)
        lines = text.split("\n")
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_minimum_one_hash(self):
        text = bar_chart({"tiny": 0.001, "big": 100.0}, width=10)
        assert "tiny | #" in text

    def test_unit_suffix(self):
        assert "2x" in bar_chart({"a": 2.0}, unit="x")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})


class TestFigurePlots:
    def test_fig3_plot(self):
        text = plot_fig3_throughput(1)
        assert "log-log" in text and "N_PE" in text

    def test_fig5_plot(self):
        text = plot_fig5()
        assert "GACT" in text

    def test_fig6_plot(self):
        text = plot_fig6()
        assert "EMBOSS" in text and "x" in text
