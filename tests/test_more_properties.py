"""Additional hypothesis properties across kernels and substrates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import get_kernel
from repro.reference import oracle_align
from repro.systolic import align
from tests.test_engine_vs_oracle import assert_equivalent

dna = st.lists(st.integers(0, 3), min_size=1, max_size=18)


@given(q=dna, r=dna, n_pe=st.integers(1, 5))
@settings(max_examples=30, deadline=None)
def test_overlap_property(q, r, n_pe):
    assert_equivalent(get_kernel(6), tuple(q), tuple(r), n_pe)


@given(q=dna, r=dna, n_pe=st.integers(1, 5))
@settings(max_examples=30, deadline=None)
def test_semiglobal_property(q, r, n_pe):
    assert_equivalent(get_kernel(7), tuple(q), tuple(r), n_pe)


@given(
    n=st.integers(2, 18), seed=st.integers(0, 10**6), n_pe=st.integers(1, 5)
)
@settings(max_examples=25, deadline=None)
def test_banded_global_property(n, seed, n_pe):
    rng = np.random.RandomState(seed)
    q = tuple(int(b) for b in rng.randint(0, 4, n))
    r = tuple(int(b) for b in rng.randint(0, 4, n))
    assert_equivalent(get_kernel(11), q, r, n_pe)


@given(
    q=st.lists(st.integers(0, 19), min_size=1, max_size=16),
    r=st.lists(st.integers(0, 19), min_size=1, max_size=16),
    n_pe=st.integers(1, 4),
)
@settings(max_examples=25, deadline=None)
def test_protein_property(q, r, n_pe):
    assert_equivalent(get_kernel(15), tuple(q), tuple(r), n_pe)


@given(
    q=st.lists(st.integers(0, 255), min_size=1, max_size=16),
    r=st.lists(st.integers(0, 255), min_size=1, max_size=16),
    n_pe=st.integers(1, 4),
)
@settings(max_examples=25, deadline=None)
def test_sdtw_property(q, r, n_pe):
    assert_equivalent(get_kernel(14), tuple(q), tuple(r), n_pe)


@given(q=dna, r=dna)
@settings(max_examples=25, deadline=None)
def test_score_symmetry_of_symmetric_models(q, r):
    """Kernels with symmetric scoring are query/reference symmetric in
    score (traceback moves swap roles)."""
    for kid in (1, 3):
        spec = get_kernel(kid)
        forward = align(spec, tuple(q), tuple(r), n_pe=3).score
        backward = align(spec, tuple(r), tuple(q), n_pe=3).score
        assert forward == backward


@given(q=dna, r=dna)
@settings(max_examples=25, deadline=None)
def test_local_dominates_global(q, r):
    """A local optimum is never below the global score of the same pair."""
    local = align(get_kernel(3), tuple(q), tuple(r), n_pe=3).score
    global_ = align(get_kernel(1), tuple(q), tuple(r), n_pe=3).score
    assert local >= global_ or local >= 0 > global_


@given(q=dna)
@settings(max_examples=20, deadline=None)
def test_self_alignment_is_all_matches(q):
    spec = get_kernel(1)
    result = align(spec, tuple(q), tuple(q), n_pe=3)
    assert result.score == len(q) * spec.default_params.match
    assert result.cigar == f"{len(q)}M"


@given(
    seed=st.integers(0, 10**6),
    extra=st.lists(st.integers(0, 3), min_size=1, max_size=6),
)
@settings(max_examples=20, deadline=None)
def test_semiglobal_invariant_to_reference_padding(seed, extra):
    """Semi-global scores cannot drop when the reference grows."""
    rng = np.random.RandomState(seed)
    read = tuple(int(b) for b in rng.randint(0, 4, 10))
    ref = tuple(int(b) for b in rng.randint(0, 4, 16))
    spec = get_kernel(7)
    base = align(spec, read, ref, n_pe=3).score
    padded = align(spec, read, ref + tuple(extra), n_pe=3).score
    assert padded >= base
