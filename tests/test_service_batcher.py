"""Tests for the dynamic batcher (size/deadline flush, backpressure)."""

import threading
import time

import pytest

from repro.service.batcher import (
    TRIGGER_DEADLINE,
    TRIGGER_SHUTDOWN,
    TRIGGER_SIZE,
    BatcherConfig,
    DynamicBatcher,
)


class FlushRecorder:
    """Collects (kernel_id, payloads, trigger) flushes thread-safely."""

    def __init__(self):
        self.flushes = []
        self._lock = threading.Lock()
        self._event = threading.Event()

    def __call__(self, kernel_id, entries, trigger):
        with self._lock:
            self.flushes.append(
                (kernel_id, [e.payload for e in entries], trigger)
            )
        self._event.set()

    def wait(self, count=1, timeout=5.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                if len(self.flushes) >= count:
                    return True
            time.sleep(0.005)
        return False

    @property
    def triggers(self):
        with self._lock:
            return [t for _, _, t in self.flushes]


class TestConfigValidation:
    def test_bad_values_rejected(self):
        with pytest.raises(ValueError):
            BatcherConfig(max_batch=0)
        with pytest.raises(ValueError):
            BatcherConfig(max_delay_ms=0)
        with pytest.raises(ValueError):
            BatcherConfig(max_queue_depth=0)


class TestSizeTrigger:
    def test_full_batch_flushes_immediately(self):
        recorder = FlushRecorder()
        batcher = DynamicBatcher(
            BatcherConfig(max_batch=3, max_delay_ms=10_000.0), recorder
        )
        for k in range(3):
            assert batcher.offer(1, payload=k)
        assert recorder.flushes == [(1, [0, 1, 2], TRIGGER_SIZE)]
        assert batcher.depth(1) == 0

    def test_priority_boards_first_when_oversubscribed(self):
        recorder = FlushRecorder()
        batcher = DynamicBatcher(
            BatcherConfig(max_batch=4, max_delay_ms=10_000.0), recorder
        )
        # Three low-priority, then one urgent: the urgent request must be
        # in the size-triggered batch ahead of the FIFO tail.
        for k in range(3):
            batcher.offer(1, payload=f"low{k}", priority=0)
        batcher.offer(1, payload="urgent", priority=5)
        (kernel_id, payloads, trigger), = recorder.flushes
        assert trigger == TRIGGER_SIZE
        assert payloads[0] == "urgent"
        assert set(payloads) == {"urgent", "low0", "low1", "low2"}

    def test_queues_are_per_kernel(self):
        recorder = FlushRecorder()
        batcher = DynamicBatcher(
            BatcherConfig(max_batch=2, max_delay_ms=10_000.0), recorder
        )
        batcher.offer(1, payload="a")
        batcher.offer(2, payload="b")
        assert recorder.flushes == []  # neither kernel reached max_batch
        batcher.offer(1, payload="c")
        assert recorder.flushes == [(1, ["a", "c"], TRIGGER_SIZE)]
        assert batcher.depth(2) == 1


class TestDeadlineTrigger:
    def test_partial_batch_flushes_on_linger(self):
        recorder = FlushRecorder()
        batcher = DynamicBatcher(
            BatcherConfig(max_batch=64, max_delay_ms=30.0), recorder
        )
        batcher.start()
        try:
            batcher.offer(1, payload="solo")
            assert recorder.wait(1), "deadline flush never fired"
            assert recorder.flushes[0] == (1, ["solo"], TRIGGER_DEADLINE)
        finally:
            batcher.stop()

    def test_request_deadline_tightens_linger(self):
        recorder = FlushRecorder()
        batcher = DynamicBatcher(
            BatcherConfig(max_batch=64, max_delay_ms=10_000.0), recorder
        )
        batcher.start()
        try:
            started = time.monotonic()
            batcher.offer(1, payload="urgent", deadline_ms=60.0)
            assert recorder.wait(1), "deadline flush never fired"
            # Queue budget is half the 60 ms deadline, far below the
            # 10 s linger bound.
            assert time.monotonic() - started < 5.0
        finally:
            batcher.stop()


class TestBackpressure:
    def test_offers_refused_at_bound(self):
        recorder = FlushRecorder()
        batcher = DynamicBatcher(
            BatcherConfig(max_batch=100, max_delay_ms=10_000.0,
                          max_queue_depth=3),
            recorder,
        )
        assert all(batcher.offer(1, payload=k) for k in range(3))
        assert not batcher.offer(1, payload="overflow")
        # Other kernels are unaffected: the bound is per kernel.
        assert batcher.offer(2, payload="fine")


class TestShutdown:
    def test_stop_flushes_every_residual_entry(self):
        recorder = FlushRecorder()
        batcher = DynamicBatcher(
            BatcherConfig(max_batch=4, max_delay_ms=10_000.0), recorder
        )
        batcher.start()
        for k in range(10):  # two size flushes + 2 residual
            batcher.offer(1, payload=k)
        batcher.offer(2, payload="other")
        batcher.stop()
        flushed = [
            payload
            for kernel_id, payloads, _t in recorder.flushes
            if kernel_id == 1
            for payload in payloads
        ]
        assert sorted(flushed) == list(range(10))
        assert recorder.triggers.count(TRIGGER_SIZE) == 2
        assert TRIGGER_SHUTDOWN in recorder.triggers

    def test_stop_is_idempotent(self):
        batcher = DynamicBatcher(BatcherConfig(), FlushRecorder())
        batcher.start()
        batcher.stop()
        batcher.stop()
