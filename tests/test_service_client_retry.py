"""Client failure handling: read timeouts, bounded retry, merging.

A hung server must fail outstanding requests after the read timeout
(while an idle connection survives indefinitely); a server that is
still coming up must be reachable through the bounded backoff of
:func:`connect_with_retry`; and the concurrent load generator's merged
reports must conserve every count.
"""

import socket
import threading
import time

import pytest

from repro.service import (
    ConnectError,
    LoadReport,
    RetryPolicy,
    Status,
    connect_with_retry,
)
from repro.service.client import AlignmentClient


class SilentServer:
    """Accepts connections and reads, but never answers — a hung peer."""

    def __init__(self):
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(4)
        self.port = self._sock.getsockname()[1]
        self._conns = []
        self._thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._thread.start()

    def _accept_loop(self):
        """Park every connection without ever writing a byte."""
        try:
            while True:
                conn, _addr = self._sock.accept()
                self._conns.append(conn)
        except OSError:
            pass

    def close(self):
        """Tear down the listener and every parked connection."""
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        self._sock.close()


@pytest.fixture
def silent():
    """One hung server per test."""
    server = SilentServer()
    yield server
    server.close()


class TestReadTimeout:
    """Outstanding requests fail after the timeout; idle links survive."""

    def test_hung_request_resolves_as_error(self, silent):
        client = AlignmentClient("127.0.0.1", silent.port, read_timeout=0.3)
        started = time.monotonic()
        response = client.align(1, [0, 1], [1, 0], timeout=10.0)
        elapsed = time.monotonic() - started
        assert response.status is Status.ERROR
        assert "read timeout" in response.error
        assert elapsed < 5.0
        client.close()

    def test_idle_connection_outlives_the_timeout(self, silent):
        client = AlignmentClient("127.0.0.1", silent.port, read_timeout=0.2)
        # Nothing in flight: several timeout periods later the reader
        # thread must still be pumping, not torn down.
        time.sleep(0.7)
        assert client._reader.is_alive()
        client.close()

    def test_no_timeout_by_default(self, silent):
        client = AlignmentClient("127.0.0.1", silent.port)
        slot = client.submit(1, [0, 1], [1, 0])
        time.sleep(0.3)
        assert not slot.done
        client.close()
        # Closing fails the pending request rather than dropping it.
        assert slot.result(timeout=10.0).status is Status.ERROR


class TestRetryPolicy:
    """The backoff schedule and its validation."""

    def test_delays_grow_to_the_cap(self):
        policy = RetryPolicy(
            attempts=6, base_delay_s=0.1, max_delay_s=0.5, multiplier=2.0
        )
        delays = [policy.delay_s(i) for i in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)


class TestConnectWithRetry:
    """Bounded reconnection while a service comes up."""

    def test_exhausted_budget_raises_connect_error(self):
        # Grab a port and close it so nothing listens there.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        policy = RetryPolicy(attempts=2, base_delay_s=0.01)
        started = time.monotonic()
        with pytest.raises(ConnectError) as excinfo:
            connect_with_retry("127.0.0.1", port, policy=policy,
                               connect_timeout=0.5)
        assert "after 2 attempts" in str(excinfo.value)
        assert excinfo.value.__cause__ is not None
        assert time.monotonic() - started < 10.0

    def test_connects_once_the_server_appears(self, silent):
        # Delay the listener: bind the real port only after the first
        # attempt has already failed.
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        port = listener.getsockname()[1]
        listener.close()  # first attempt refused

        late = {}

        def come_up():
            time.sleep(0.3)
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind(("127.0.0.1", port))
            sock.listen(1)
            late["sock"] = sock

        threading.Thread(target=come_up, daemon=True).start()
        client = connect_with_retry(
            "127.0.0.1", port,
            policy=RetryPolicy(attempts=10, base_delay_s=0.1,
                               max_delay_s=0.2),
        )
        client.close()
        late["sock"].close()


class TestLoadReportMerge:
    """Merged concurrent reports conserve counts and pool latencies."""

    def test_merge_sums_counts_and_pools_latencies(self):
        a = LoadReport(offered_rps=50.0, sent=10, ok=8, rejected=1,
                       errors=1, elapsed_s=2.0, latencies_ms=[1.0, 2.0])
        b = LoadReport(offered_rps=50.0, sent=10, ok=10, rejected=0,
                       errors=0, elapsed_s=3.0, latencies_ms=[3.0])
        merged = LoadReport.merge([a, b])
        assert merged.offered_rps == 100.0
        assert merged.sent == 20 and merged.ok == 18
        assert merged.rejected == 1 and merged.errors == 1
        assert merged.elapsed_s == 3.0
        assert sorted(merged.latencies_ms) == [1.0, 2.0, 3.0]
        assert merged.achieved_rps == 18 / 3.0

    def test_merge_requires_input(self):
        with pytest.raises(ValueError):
            LoadReport.merge([])
