"""Bit-identity contract between the systolic engine and compiled backend.

The compiled wavefront backend (:mod:`repro.backend`) must be
indistinguishable from the cycle-accurate systolic engine in every
observable output: score (value *and* Python type), traceback start/end
cells, recovered move sequences, the cycle report, the collected DP
matrices (values and dtype), and even the exceptions raised on invalid
input.  These goldens pin that contract over every registered kernel,
the edge cases most likely to diverge, and the cache-fingerprint
invariance that lets the two backends share one alignment cache.
"""

import numpy as np
import pytest

from repro.backend import (
    BACKENDS,
    compiled_align,
    get_backend,
    lower,
)
from repro.kernels import get_kernel, kernel_ids
from repro.systolic.engine import align
from repro.verify_fuzz import generate_case

ALL_KERNELS = tuple(kernel_ids())


def _outcome(fn, spec, query, reference, n_pe):
    """Run one backend, capturing either the result or the exception."""
    try:
        return fn(spec, query, reference, n_pe=n_pe, collect_matrix=True)
    except Exception as exc:  # noqa: BLE001 — parity check needs them all
        return exc


def assert_bit_identical(spec, query, reference, n_pe=4):
    """Every observable output of both backends must match exactly."""
    ours = _outcome(align, spec, query, reference, n_pe)
    theirs = _outcome(compiled_align, spec, query, reference, n_pe)
    if isinstance(ours, Exception) or isinstance(theirs, Exception):
        assert type(ours) is type(theirs), (ours, theirs)
        assert str(ours) == str(theirs)
        return
    assert ours.score == theirs.score
    assert type(ours.score) is type(theirs.score)
    assert ours.start == theirs.start
    assert ours.end == theirs.end
    assert ours.alignment == theirs.alignment
    assert ours.cycles == theirs.cycles
    assert ours.matrix.dtype == theirs.matrix.dtype
    assert np.array_equal(ours.matrix, theirs.matrix)


class TestGoldenEquivalence:
    """Seeded corpora over all 15 kernels, scores AND tracebacks."""

    @pytest.mark.parametrize("kid", ALL_KERNELS)
    @pytest.mark.parametrize("seed", range(3))
    def test_bit_identical(self, kid, seed):
        case = generate_case(kid, seed * 131 + kid, max_len=24)
        assert_bit_identical(
            get_kernel(kid), case.query, case.reference, n_pe=case.n_pe
        )

    @pytest.mark.parametrize("kid", (1, 2, 9, 11, 15))
    def test_bit_identical_across_pe_counts(self, kid):
        case = generate_case(kid, 7 * kid, max_len=20)
        for n_pe in (1, 4, 32):
            assert_bit_identical(
                get_kernel(kid), case.query, case.reference, n_pe=n_pe
            )


class TestEdgeCases:
    @pytest.mark.parametrize("kid", (1, 3, 11))
    def test_empty_query_same_exception(self, kid):
        case = generate_case(kid, kid, max_len=8)
        assert_bit_identical(get_kernel(kid), (), case.reference)
        assert_bit_identical(get_kernel(kid), case.query, ())

    @pytest.mark.parametrize("kid", (1, 2, 3, 4, 6, 7, 11))
    def test_length_one(self, kid):
        spec = get_kernel(kid)
        assert_bit_identical(spec, (0,), (0,))
        assert_bit_identical(spec, (0,), (3,))

    @pytest.mark.parametrize("kid", (1, 3, 6, 7, 15))
    def test_all_mismatch(self, kid):
        spec = get_kernel(kid)
        cardinality = spec.alphabet.size or 4
        query = (0,) * 12
        reference = (cardinality - 1,) * 12
        assert_bit_identical(spec, query, reference)

    @pytest.mark.parametrize("kid", (11, 12, 13))
    def test_band_clipped(self, kid):
        """Sequences long enough that the band clips the wavefront."""
        spec = get_kernel(kid)
        assert spec.banding is not None
        case = generate_case(kid, 3 * kid + 1, max_len=8)
        length = spec.banding + 16  # diagonals beyond the band width
        rng = np.random.RandomState(kid)
        query = tuple(int(s) for s in rng.randint(0, 4, size=length))
        reference = tuple(int(s) for s in rng.randint(0, 4, size=length))
        assert_bit_identical(spec, query, reference)
        # and the oversized-|Q - R| rejection is word-for-word identical
        assert_bit_identical(spec, case.query, case.reference)


class TestBackendRegistry:
    def test_registry_contents(self):
        assert set(BACKENDS) == {"systolic", "compiled"}
        assert get_backend("compiled") is compiled_align

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("verilator")

    def test_lowering_is_cached(self):
        spec = get_kernel(1)
        assert lower(spec) is lower(spec)

    @pytest.mark.parametrize("kid", ALL_KERNELS)
    def test_every_kernel_lowers(self, kid):
        compiled = lower(get_kernel(kid))
        assert compiled.source.startswith("def _pe(")


class TestCacheBackendInvariance:
    """A cache warmed by one backend must hit from the other."""

    def _cached_runtime(self, kid, stack, backend):
        from repro.cache import CachedRuntime
        from repro.host import DeviceRuntime
        from repro.synth import LaunchConfig

        return CachedRuntime(
            DeviceRuntime(
                get_kernel(kid),
                LaunchConfig(n_pe=4, n_b=2, n_k=1,
                             max_query_len=64, max_ref_len=64),
                backend=backend,
            ),
            stack,
        )

    @pytest.mark.parametrize("kid", (1, 4, 11, 15))
    def test_fingerprints_are_backend_invariant(self, kid):
        from repro.cache import CacheStack

        stack = CacheStack()
        systolic = self._cached_runtime(kid, stack, "systolic")
        compiled = self._cached_runtime(kid, stack, "compiled")
        assert systolic.runtime_key == compiled.runtime_key
        case = generate_case(kid, kid + 21, max_len=16)
        pair = (case.query, case.reference)
        assert systolic.pair_key(*pair) == compiled.pair_key(*pair)

    @pytest.mark.parametrize("warm,probe", [
        ("systolic", "compiled"), ("compiled", "systolic"),
    ])
    def test_cross_backend_cache_hits(self, warm, probe):
        from repro.cache import CacheStack

        stack = CacheStack()
        warmer = self._cached_runtime(1, stack, warm)
        prober = self._cached_runtime(1, stack, probe)
        pairs = [
            (case.query, case.reference)
            for case in (generate_case(1, s + 50, max_len=16)
                         for s in range(4))
        ]
        first = warmer.run(pairs)
        assert first.cached == [False] * len(pairs)
        second = prober.run(pairs)
        assert second.cached == [True] * len(pairs)
        for a, b in zip(first.results, second.results):
            assert a.score == b.score
            assert a.alignment == b.alignment
