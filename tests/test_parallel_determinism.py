"""Determinism regressions: worker count must never change any output.

Same seed ⇒ byte-identical fuzz corpus, and campaign/fuzz summaries that
are identical whether the run used ``workers=1`` or ``workers=4`` — the
property that lets the parallel layer replace the serial one everywhere.
"""

import pytest

from repro.campaign import run_campaign, run_full_campaign
from repro.verify_fuzz import corpus_digest, make_corpus, run_corpus


class TestCorpusDeterminism:
    def test_same_seed_byte_identical_corpus(self):
        kwargs = dict(kernels=(1, 3, 9), cases_per_kernel=5, seed=11, max_len=16)
        assert corpus_digest(make_corpus(**kwargs)) == corpus_digest(
            make_corpus(**kwargs)
        )

    def test_golden_digest_pinned(self):
        """The corpus encoding is part of the reproducibility contract.

        If this digest moves, recorded fuzz reproducers from earlier runs
        no longer regenerate — bump it only with a changelog entry.
        (Bumped when the corpus became keyed by repro.cache fingerprints;
        see CHANGES.md PR 4.  Bumped again when the harness became the
        three-way differential — "harness": "three_way_v1"; see
        CHANGES.md PR 6.  Bumped again when the batched-vs-single
        compiled leg landed — "harness": "four_way_v1"; see CHANGES.md
        PR 8.  Case *generation* was untouched every time — the same
        seed still yields the same sequences.)
        """
        corpus = make_corpus(kernels=(1,), cases_per_kernel=3, seed=0, max_len=8)
        assert corpus_digest(corpus) == (
            "0942522cc398208e6a3d72654ce359e7287c5c4ce2f3345c9453b3fe4d9c7bc2"
        )


class TestWorkerCountInvariance:
    def test_campaign_summary_identical_serial_vs_parallel(self):
        kwargs = dict(n_pairs=8, engine_sample=1, max_length=20, seed=0)
        serial = run_campaign(1, workers=1, **kwargs)
        parallel = run_campaign(1, workers=4, **kwargs)
        assert serial.summary() == parallel.summary()
        assert serial == parallel

    def test_full_campaign_summary_identical(self):
        kwargs = dict(
            kernels=(1, 3), n_pairs=4, engine_sample=1, max_length=16, seed=2
        )
        serial = run_full_campaign(workers=1, **kwargs)
        parallel = run_full_campaign(workers=4, **kwargs)
        assert serial.summary() == parallel.summary()

    @pytest.mark.parametrize("workers", (2, 4))
    def test_fuzz_report_identical_across_worker_counts(self, workers):
        corpus = make_corpus(kernels=(1, 9), cases_per_kernel=3, seed=4, max_len=12)
        serial = run_corpus(corpus, seed=4, workers=1)
        pooled = run_corpus(corpus, seed=4, workers=workers)
        assert serial.summary() == pooled.summary()
        assert serial == pooled
