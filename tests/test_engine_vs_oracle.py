"""Systolic engine vs row-major oracle: cell-exact equivalence.

These are the framework's core correctness tests.  The engine runs the
chunked wavefront schedule with PE registers, banked traceback memory and
reduction; the oracle runs the same KernelSpec in the obvious row-major
order.  Scores, start cells and recovered alignments must match exactly
for every kernel, over randomized workloads and pathological shapes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import KERNELS, get_kernel
from repro.reference import oracle_align
from repro.systolic import align
from tests.conftest import mutated_copy, random_dna

DNA_KERNELS = (1, 2, 3, 4, 5, 6, 7, 10, 12)
BANDED_GLOBAL_KERNELS = (11, 13)
ALL_KERNELS = tuple(sorted(KERNELS))


def assert_equivalent(spec, query, reference, n_pe):
    ours = align(spec, query, reference, n_pe=n_pe)
    ref = oracle_align(spec, query, reference)
    assert np.isclose(ours.score, ref.score), (
        f"{spec.name}: systolic score {ours.score} != oracle {ref.score}"
    )
    assert ours.start == ref.start
    if spec.has_traceback:
        assert ours.alignment is not None and ref.alignment is not None
        assert ours.alignment.moves == ref.alignment.moves
        assert ours.end == ref.end


def workload_pair(kid: int, seed: int, length: int):
    """A realistic (query, reference) pair for any kernel."""
    if kid in BANDED_GLOBAL_KERNELS:
        ref = random_dna(length, seed)
        qry = random_dna(length, seed + 1000)  # equal lengths for the band
        return qry, ref
    if kid in DNA_KERNELS:
        ref = random_dna(length, seed)
        return mutated_copy(ref, seed + 1000), ref
    if kid == 8:
        from repro.data.profiles import profile_pair

        return profile_pair(n_cols=max(4, length // 2), seed=seed)
    if kid == 9:
        from repro.data.signals import random_complex_signal, warp_signal

        ref = random_complex_signal(length, seed=seed)
        return warp_signal(ref, seed=seed + 1)[:length], ref
    if kid == 14:
        from repro.data.signals import sdtw_pair

        return sdtw_pair(ref_bases=max(10, length // 3), seed=seed)
    if kid == 15:
        from repro.data.protein import mutate_protein, random_protein

        ref = random_protein(length, seed=seed)
        return mutate_protein(ref, seed=seed + 1)[:length], ref
    raise AssertionError(f"no workload for kernel #{kid}")


@pytest.mark.parametrize("kid", ALL_KERNELS)
@pytest.mark.parametrize("n_pe", (1, 3, 8))
def test_engine_matches_oracle(kid, n_pe):
    spec = get_kernel(kid)
    query, reference = workload_pair(kid, seed=kid * 7 + n_pe, length=40)
    assert_equivalent(spec, query, reference, n_pe)


@pytest.mark.parametrize("kid", ALL_KERNELS)
def test_engine_matches_oracle_multiple_seeds(kid):
    spec = get_kernel(kid)
    for seed in range(3):
        query, reference = workload_pair(kid, seed=seed * 31 + kid, length=28)
        assert_equivalent(spec, query, reference, n_pe=4)


@pytest.mark.parametrize("kid", (1, 2, 3, 6, 7))
def test_extreme_shapes(kid):
    """Very asymmetric matrices exercise chunking and wavefront edges."""
    spec = get_kernel(kid)
    tall_q = random_dna(37, seed=kid)
    wide_r = random_dna(5, seed=kid + 1)
    assert_equivalent(spec, tall_q, wide_r, n_pe=4)
    assert_equivalent(spec, wide_r, tall_q, n_pe=4)


@pytest.mark.parametrize("kid", (1, 3, 14))
def test_single_symbol_sequences(kid):
    spec = get_kernel(kid)
    if kid == 14:
        query, reference = (100,), (90, 110, 100)
    else:
        query, reference = (0,), (0, 1, 2)
    assert_equivalent(spec, query, reference, n_pe=2)


def test_npe_larger_than_query():
    spec = get_kernel(1)
    query = random_dna(3, seed=5)
    reference = random_dna(9, seed=6)
    assert_equivalent(spec, query, reference, n_pe=16)


@given(
    q=st.lists(st.integers(0, 3), min_size=1, max_size=24),
    r=st.lists(st.integers(0, 3), min_size=1, max_size=24),
    n_pe=st.integers(1, 6),
)
@settings(max_examples=60, deadline=None)
def test_global_linear_property(q, r, n_pe):
    assert_equivalent(get_kernel(1), tuple(q), tuple(r), n_pe)


@given(
    q=st.lists(st.integers(0, 3), min_size=1, max_size=20),
    r=st.lists(st.integers(0, 3), min_size=1, max_size=20),
    n_pe=st.integers(1, 5),
)
@settings(max_examples=40, deadline=None)
def test_local_affine_property(q, r, n_pe):
    assert_equivalent(get_kernel(4), tuple(q), tuple(r), n_pe)


@given(
    seed=st.integers(0, 10**6),
    n=st.integers(8, 24),
    n_pe=st.integers(1, 6),
)
@settings(max_examples=30, deadline=None)
def test_banded_two_piece_property(seed, n, n_pe):
    q = random_dna(n, seed)
    r = random_dna(n, seed + 1)
    assert_equivalent(get_kernel(13), q, r, n_pe)


class TestEngineValidation:
    def test_empty_sequences_rejected(self):
        spec = get_kernel(1)
        with pytest.raises(ValueError):
            align(spec, (), (0, 1))

    def test_max_length_enforced(self):
        spec = get_kernel(1)
        q = random_dna(10, 1)
        with pytest.raises(ValueError, match="tiling"):
            align(spec, q, q, max_query_len=4)

    def test_banded_global_needs_near_square(self):
        spec = get_kernel(11)
        q = random_dna(8, 1)
        r = random_dna(80, 2)
        with pytest.raises(ValueError, match="band"):
            align(spec, q, r)

    def test_mis_encoded_symbols_rejected(self):
        spec = get_kernel(1)
        with pytest.raises(ValueError, match="alphabet"):
            align(spec, ("A", "C"), (0, 1))  # letters instead of codes
        with pytest.raises(ValueError, match="alphabet"):
            align(spec, (7, 1), (0, 1))  # out-of-range code

    def test_collect_matrix_matches_oracle(self):
        spec = get_kernel(2)
        q, r = random_dna(12, 3), random_dna(15, 4)
        ours = align(spec, q, r, n_pe=4, collect_matrix=True)
        ref = oracle_align(spec, q, r, collect_matrix=True)
        assert np.allclose(ours.matrix, ref.matrix)
