"""Tests for the banked traceback memory and its address coalescing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.systolic.schedule import chunk_schedules
from repro.systolic.tb_memory import TracebackMemory


class TestConstruction:
    def test_depth_geometry(self):
        mem = TracebackMemory(n_pe=8, max_query_len=32, max_ref_len=16, ptr_bits=2)
        assert mem.depth == (32 // 8) * (16 + 8 - 1)

    def test_depth_rounds_chunks_up(self):
        mem = TracebackMemory(n_pe=8, max_query_len=33, max_ref_len=16, ptr_bits=2)
        assert mem.depth == 5 * (16 + 8 - 1)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            TracebackMemory(0, 16, 16, 2)
        with pytest.raises(ValueError):
            TracebackMemory(4, 0, 16, 2)
        with pytest.raises(ValueError):
            TracebackMemory(4, 16, 16, 1)

    def test_storage_bits(self):
        mem = TracebackMemory(4, 16, 16, 3)
        assert mem.storage_bits() == 4 * mem.depth * 3

    def test_bank_shape(self):
        mem = TracebackMemory(4, 16, 16, 7)
        assert mem.bank_shape() == (mem.depth, 7)


class TestAddressing:
    def test_roundtrip(self):
        mem = TracebackMemory(4, 16, 16, 4)
        mem.begin_alignment(10)
        bank, addr = mem.address(5, 7)
        mem.write(bank, addr, 9)
        assert mem.read(5, 7) == 9

    def test_cells_map_uniquely(self):
        mem = TracebackMemory(4, 12, 10, 4)
        mem.begin_alignment(10)
        seen = set()
        for i in range(1, 13):
            for j in range(1, 11):
                key = mem.address(i, j)
                assert key not in seen
                seen.add(key)

    def test_border_cells_rejected(self):
        mem = TracebackMemory(4, 8, 8, 2)
        with pytest.raises(ValueError):
            mem.address(0, 3)
        with pytest.raises(ValueError):
            mem.address(3, 0)

    def test_ptr_width_enforced(self):
        mem = TracebackMemory(2, 8, 8, 2)
        mem.begin_alignment(8)
        with pytest.raises(ValueError):
            mem.write(0, 0, 4)  # needs 3 bits

    def test_ref_len_bound(self):
        mem = TracebackMemory(2, 8, 8, 2)
        with pytest.raises(ValueError):
            mem.begin_alignment(9)


class TestCoalescing:
    """The Section 5.2 properties: within one wavefront all PEs write the
    same address; consecutive wavefronts write consecutive addresses."""

    @given(
        st.integers(1, 24), st.integers(1, 24), st.integers(1, 8)
    )
    @settings(max_examples=40, deadline=None)
    def test_wavefront_coalescing(self, n, m, n_pe):
        mem = TracebackMemory(n_pe, n, m, 4)
        mem.begin_alignment(m)
        chunks = chunk_schedules(n, m, n_pe)
        for chunk_idx, chunk in enumerate(chunks):
            prev_addr = None
            for w in chunk.wavefronts:
                addrs = set()
                for p in range(chunk.rows):
                    j = w - p + 1
                    if 1 <= j <= m:
                        i = chunk.base + p + 1
                        _bank, addr = mem.address(i, j)
                        addrs.add(addr)
                assert len(addrs) == 1, "PEs of one wavefront disagree on address"
                addr = addrs.pop()
                assert addr == chunk_idx * mem.stride + w
                if prev_addr is not None:
                    assert addr == prev_addr + 1, "wavefront addresses not consecutive"
                prev_addr = addr

    def test_banks_match_pes(self):
        n_pe = 4
        mem = TracebackMemory(n_pe, 16, 16, 2)
        mem.begin_alignment(16)
        for i in range(1, 17):
            bank, _ = mem.address(i, 3)
            assert bank == (i - 1) % n_pe

    def test_write_counter(self):
        mem = TracebackMemory(2, 4, 4, 2)
        mem.begin_alignment(4)
        for i in range(1, 5):
            for j in range(1, 5):
                bank, addr = mem.address(i, j)
                mem.write(bank, addr, 1)
        assert mem.writes == 16
        mem.begin_alignment(4)
        assert mem.writes == 0
