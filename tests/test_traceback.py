"""Tests for the traceback walker and the best-cell tracker."""

import pytest

from repro.core.result import Move
from repro.core.spec import (
    TB_DIAG,
    TB_END,
    TB_LEFT,
    TB_UP,
    EndRule,
    Objective,
    StartRule,
    TracebackSpec,
)
from repro.systolic.traceback import BestCellTracker, TracebackError, walk_traceback
from tests.test_spec import make_spec
from repro.kernels.common import linear_tb


class FakeMemory:
    """Pointer store backed by a dict; unset cells read TB_END."""

    def __init__(self, ptrs):
        self._ptrs = ptrs

    def read(self, i, j):
        return self._ptrs.get((i, j), TB_END)


def tb_spec(end_rule, start_rule=StartRule.BOTTOM_RIGHT):
    return make_spec(
        start_rule=start_rule,
        traceback=TracebackSpec(end=end_rule),
        tb_transition=linear_tb,
    )


class TestWalker:
    def test_pure_diagonal_global(self):
        spec = tb_spec(EndRule.TOP_LEFT)
        ptrs = {(i, i): TB_DIAG for i in range(1, 4)}
        aln = walk_traceback(spec, FakeMemory(ptrs), (3, 3))
        assert aln.cigar == "3M"
        assert (aln.query_start, aln.ref_start) == (0, 0)

    def test_global_boundary_walks_row0(self):
        spec = tb_spec(EndRule.TOP_LEFT)
        ptrs = {(1, 3): TB_DIAG}
        aln = walk_traceback(spec, FakeMemory(ptrs), (1, 3))
        # one diagonal into row 0, then INS moves to (0, 0)
        assert aln.cigar == "2I1M"
        assert aln.query_start == 0 and aln.ref_start == 0

    def test_global_boundary_walks_col0(self):
        spec = tb_spec(EndRule.TOP_LEFT)
        ptrs = {(3, 1): TB_DIAG}
        aln = walk_traceback(spec, FakeMemory(ptrs), (3, 1))
        assert aln.cigar == "2D1M"

    def test_local_stops_at_end_pointer(self):
        spec = tb_spec(EndRule.SENTINEL, StartRule.GLOBAL_MAX)
        ptrs = {(3, 3): TB_DIAG, (2, 2): TB_DIAG, (1, 1): TB_END}
        aln = walk_traceback(spec, FakeMemory(ptrs), (3, 3))
        assert aln.cigar == "2M"
        assert (aln.query_start, aln.ref_start) == (1, 1)

    def test_semiglobal_stops_at_top_row(self):
        spec = tb_spec(EndRule.TOP_ROW, StartRule.LAST_ROW_MAX)
        ptrs = {(2, 5): TB_DIAG, (1, 4): TB_DIAG}
        aln = walk_traceback(spec, FakeMemory(ptrs), (2, 5))
        assert aln.cigar == "2M"
        assert aln.ref_start == 3  # free reference prefix

    def test_overlap_stops_at_left_col(self):
        spec = tb_spec(EndRule.TOP_ROW_OR_LEFT_COL, StartRule.LAST_ROW_OR_COL_MAX)
        ptrs = {(3, 2): TB_DIAG, (2, 1): TB_DIAG}
        aln = walk_traceback(spec, FakeMemory(ptrs), (3, 2))
        assert aln.cigar == "2M"
        assert aln.query_start == 1 and aln.ref_start == 0

    def test_mixed_moves(self):
        spec = tb_spec(EndRule.TOP_LEFT)
        ptrs = {
            (3, 3): TB_UP,
            (2, 3): TB_LEFT,
            (2, 2): TB_DIAG,
            (1, 1): TB_DIAG,
        }
        aln = walk_traceback(spec, FakeMemory(ptrs), (3, 3))
        assert aln.cigar == "2M1I1D"

    def test_score_only_kernel_rejected(self):
        spec = make_spec()
        with pytest.raises(TracebackError):
            walk_traceback(spec, FakeMemory({}), (1, 1))


class TestBestCellTracker:
    def make_tracker(self, rule, n_rows=4, n_cols=4, objective=Objective.MAXIMIZE):
        spec = make_spec(start_rule=rule, objective=objective)
        return BestCellTracker(spec, n_pe=2, n_rows=n_rows, n_cols=n_cols)

    def test_global_max(self):
        t = self.make_tracker(StartRule.GLOBAL_MAX)
        t.observe(0, 1, 1, 5.0)
        t.observe(1, 2, 3, 9.0)
        t.observe(0, 3, 1, 7.0)
        assert t.reduce() == (9.0, 2, 3)

    def test_last_row_only(self):
        t = self.make_tracker(StartRule.LAST_ROW_MAX)
        t.observe(0, 3, 1, 100.0)  # not last row -> ignored
        t.observe(1, 4, 2, 5.0)
        assert t.reduce() == (5.0, 4, 2)

    def test_last_row_or_col(self):
        t = self.make_tracker(StartRule.LAST_ROW_OR_COL_MAX)
        t.observe(0, 1, 4, 6.0)  # last column counts
        t.observe(1, 4, 1, 5.0)
        assert t.reduce() == (6.0, 1, 4)

    def test_minimize_objective(self):
        t = self.make_tracker(StartRule.GLOBAL_MAX, objective=Objective.MINIMIZE)
        t.observe(0, 1, 1, 5.0)
        t.observe(1, 2, 2, 2.0)
        assert t.reduce() == (2.0, 2, 2)

    def test_tie_breaks_to_smallest_cell(self):
        t = self.make_tracker(StartRule.GLOBAL_MAX)
        t.observe(1, 2, 2, 7.0)
        t.observe(0, 1, 3, 7.0)
        assert t.reduce() == (7.0, 1, 3)

    def test_tie_within_pe_keeps_first(self):
        t = self.make_tracker(StartRule.GLOBAL_MAX)
        t.observe(0, 1, 2, 7.0)
        t.observe(0, 1, 1, 7.0)  # smaller j, same score
        assert t.reduce() == (7.0, 1, 1)

    def test_empty_tracker_raises(self):
        t = self.make_tracker(StartRule.GLOBAL_MAX)
        with pytest.raises(TracebackError):
            t.reduce()

    def test_reduction_cycles_zero_for_bottom_right(self):
        t = self.make_tracker(StartRule.BOTTOM_RIGHT)
        assert t.reduction_cycles() == 0

    def test_reduction_cycles_log_depth(self):
        spec = make_spec(start_rule=StartRule.GLOBAL_MAX)
        t = BestCellTracker(spec, n_pe=32, n_rows=4, n_cols=4)
        assert t.reduction_cycles() == 5 + 2
