"""Tests for alignment results, CIGAR handling and cycle reports."""

import pytest

from repro.core.result import (
    Alignment,
    CycleReport,
    Move,
    compress_cigar,
)


class TestCigar:
    def test_empty(self):
        assert compress_cigar([]) == ""

    def test_single_run(self):
        assert compress_cigar([Move.MATCH] * 3) == "3M"

    def test_mixed(self):
        moves = [Move.MATCH, Move.MATCH, Move.INS, Move.DEL, Move.DEL]
        assert compress_cigar(moves) == "2M1I2D"

    def test_end_moves_skipped(self):
        assert compress_cigar([Move.MATCH, Move.END]) == "1M"

    def test_alternating(self):
        moves = [Move.MATCH, Move.INS, Move.MATCH, Move.INS]
        assert compress_cigar(moves) == "1M1I1M1I"


class TestAlignment:
    def make(self):
        return Alignment(
            moves=(Move.MATCH, Move.DEL, Move.MATCH, Move.INS),
            query_start=0,
            query_end=3,
            ref_start=0,
            ref_end=3,
        )

    def test_cigar(self):
        assert self.make().cigar == "1M1D1M1I"

    def test_aligned_length(self):
        assert self.make().aligned_length == 4

    def test_pretty_rows_aligned(self):
        aln = self.make()
        text = aln.pretty((0, 1, 2), (0, 1, 3))
        top, mid, bot = text.split("\n")
        assert len(top) == len(mid) == len(bot) == 4
        assert top == "AC-G" or "-" in top

    def test_pretty_gap_symbols(self):
        aln = Alignment((Move.INS,), 0, 0, 0, 1)
        top, _mid, bot = aln.pretty((), (2,)).split("\n")
        assert top == "-"
        assert bot == "G"

    def test_pretty_match_bar(self):
        aln = Alignment((Move.MATCH,), 0, 1, 0, 1)
        _top, mid, _bot = aln.pretty((0,), (0,)).split("\n")
        assert mid == "|"

    def test_pretty_mismatch_dot(self):
        aln = Alignment((Move.MATCH,), 0, 1, 0, 1)
        _top, mid, _bot = aln.pretty((0,), (1,)).split("\n")
        assert mid == "."


class TestCycleReport:
    def test_total(self):
        report = CycleReport(
            init_cycles=10, load_cycles=5, compute_cycles=100,
            reduction_cycles=3, traceback_cycles=20, interface_cycles=40,
        )
        assert report.total == 178

    def test_seconds(self):
        report = CycleReport(compute_cycles=1000)
        assert report.seconds(1e6) == pytest.approx(1e-3)

    def test_seconds_invalid_frequency(self):
        with pytest.raises(ValueError):
            CycleReport(compute_cycles=1).seconds(0)

    def test_defaults_zero(self):
        assert CycleReport().total == 0
