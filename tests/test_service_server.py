"""End-to-end tests of the alignment service (TCP and in-proc).

Pins the serving subsystem's acceptance contract: a 2-runtime
mixed-kernel pool answers hundreds of concurrent requests with payloads
byte-identical to ``DeviceRuntime.run`` on the same pairs,
deadline-triggered flushes are observable in the metrics, and past the
admission bound requests are *rejected* (answered), never dropped.
"""

import threading

import pytest

from repro.host import DeviceRuntime
from repro.kernels import get_kernel
from repro.service import (
    AlignmentClient,
    AlignmentServer,
    BatcherConfig,
    DevicePool,
    InProcClient,
    ServiceCore,
    Status,
)
from repro.service.protocol import response_from_result
from tests.conftest import mutated_copy, random_dna

KERNEL_IDS = (1, 3)
PAIR_LENGTH = 16


def small_config(**overrides):
    base = dict(n_pe=8, n_b=4, n_k=1, max_query_len=64, max_ref_len=64)
    base.update(overrides)
    from repro.synth import LaunchConfig

    return LaunchConfig(**base)


def make_workload(n):
    """n (kernel_id, query, reference) tuples cycling the two kernels."""
    out = []
    for k in range(n):
        ref = random_dna(PAIR_LENGTH, seed=500 + k)
        qry = mutated_copy(ref, 900 + k)[:PAIR_LENGTH]
        out.append((KERNEL_IDS[k % len(KERNEL_IDS)], qry, ref))
    return out


def two_runtime_pool():
    return DevicePool([
        DeviceRuntime(get_kernel(kernel_id), small_config())
        for kernel_id in KERNEL_IDS
    ])


@pytest.fixture
def served_core():
    """A started core over a 2-runtime mixed-kernel pool."""
    core = ServiceCore(two_runtime_pool(), BatcherConfig(
        max_batch=8, max_delay_ms=15.0, max_queue_depth=512
    )).start()
    yield core
    core.stop()


class TestEndToEndTCP:
    def test_200_concurrent_mixed_kernel_requests(self, served_core):
        """The acceptance-criteria run, over real sockets."""
        reference_runtimes = {
            kernel_id: DeviceRuntime(get_kernel(kernel_id), small_config())
            for kernel_id in KERNEL_IDS
        }
        server = AlignmentServer(("127.0.0.1", 0), served_core)
        server.serve_in_thread()
        host, port = server.server_address
        client = AlignmentClient(host, port)
        try:
            workload = make_workload(200)
            slots = [
                client.submit(kernel_id, query, reference)
                for kernel_id, query, reference in workload
            ]
            responses = [slot.result(timeout=120.0) for slot in slots]
            assert all(r.status is Status.OK for r in responses)

            # Byte-identity: the wire payload (minus wall-clock latency)
            # must equal one built locally from DeviceRuntime.run.
            for (kernel_id, query, reference), slot, response in zip(
                workload, slots, responses
            ):
                local = reference_runtimes[kernel_id].run(
                    [(query, reference)]
                ).results[0]
                expected = response_from_result(
                    slot.request.request_id, local
                )
                assert response.to_line(with_latency=False) == \
                    expected.to_line(with_latency=False)

            # A solo request on an empty queue can only leave via the
            # deadline trigger — it must then show up in the metrics.
            kernel_id, query, reference = workload[0]
            assert client.align(kernel_id, query, reference).ok
            snapshot = client.metrics()
            counters = snapshot["counters"]
            assert counters["aligned_total"] == 201
            assert counters["flush_deadline_total"] >= 1
            assert counters["flush_size_total"] >= 1
            assert counters.get("rejected_total", 0) == 0
            assert snapshot["histograms"]["latency_ms"]["count"] == 201
            assert snapshot["kernels"] == [1, 3]
            assert sum(m["pairs_served"] for m in snapshot["pool"]) == 201
        finally:
            client.close()
            server.shutdown()
            server.server_close()

    def test_control_plane_and_error_paths(self, served_core):
        server = AlignmentServer(("127.0.0.1", 0), served_core)
        server.serve_in_thread()
        host, port = server.server_address
        client = AlignmentClient(host, port)
        try:
            assert client.ping()
            unknown = client.align(9, (1, 2, 3), (1, 2, 3))
            assert unknown.status is Status.ERROR
            assert "not deployed" in unknown.error
            overlong = client.align(1, tuple([0] * 100), (0, 1))
            assert overlong.status is Status.ERROR
            assert "exceeds" in overlong.error
        finally:
            client.close()
            server.shutdown()
            server.server_close()


class TestBackpressure:
    def test_past_the_bound_requests_reject_not_drop(self):
        """Flooding a tiny admission bound answers every request."""
        core = ServiceCore(two_runtime_pool(), BatcherConfig(
            # max_batch > bound: the queue can never size-flush, so a
            # fast flood must hit admission control.
            max_batch=100, max_delay_ms=100.0, max_queue_depth=5
        )).start()
        client = InProcClient(core)
        try:
            workload = make_workload(50)
            slots = [
                client.submit(1, query, reference)
                for _kid, query, reference in workload
            ]
            responses = [slot.result(timeout=60.0) for slot in slots]
            ok = sum(r.status is Status.OK for r in responses)
            rejected = sum(r.status is Status.REJECTED for r in responses)
            errors = sum(r.status is Status.ERROR for r in responses)
            assert ok + rejected + errors == 50  # answered, never dropped
            assert errors == 0
            assert rejected > 0
            assert ok >= 5  # the admitted head of the flood completes
            for response in responses:
                if response.status is Status.REJECTED:
                    assert "queue is full" in response.error
            counters = core.metrics.snapshot()["counters"]
            assert counters["rejected_total"] == rejected
            assert counters["aligned_total"] == ok
        finally:
            core.stop()


class TestInProc:
    def test_context_manager_lifecycle(self):
        with ServiceCore(two_runtime_pool()) as core:
            client = InProcClient(core)
            response = client.align(1, (0, 1, 2, 3), (0, 1, 2, 3))
            assert response.ok and response.cigar == "4M"
        # After stop, new traffic is refused (answered as rejected).
        late = client.submit(1, (0, 1), (0, 1)).result(timeout=5.0)
        assert late.status is Status.REJECTED

    def test_shutdown_resolves_residual_queue(self):
        """stop() must answer entries still lingering in the batcher."""
        core = ServiceCore(two_runtime_pool(), BatcherConfig(
            max_batch=64, max_delay_ms=60_000.0  # only shutdown can flush
        )).start()
        client = InProcClient(core)
        slots = [client.submit(1, (0, 1, 2), (0, 1, 2)) for _ in range(3)]
        done = threading.Event()

        def stopper():
            core.stop()
            done.set()

        threading.Thread(target=stopper).start()
        responses = [slot.result(timeout=60.0) for slot in slots]
        assert done.wait(timeout=60.0)
        assert all(r.status is Status.OK for r in responses)

    def test_concurrent_submitters_all_resolve(self):
        """Many client threads hammering one core: every slot resolves."""
        with ServiceCore(two_runtime_pool(), BatcherConfig(
            max_batch=4, max_delay_ms=10.0, max_queue_depth=512
        )) as core:
            client = InProcClient(core)
            workload = make_workload(40)
            results = []
            lock = threading.Lock()

            def worker(chunk):
                for kernel_id, query, reference in chunk:
                    response = client.align(
                        kernel_id, query, reference, timeout=60.0
                    )
                    with lock:
                        results.append(response)

            threads = [
                threading.Thread(target=worker, args=(workload[k::4],))
                for k in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len(results) == 40
            assert all(r.status is Status.OK for r in results)
