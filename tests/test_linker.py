"""Tests for heterogeneous multi-kernel linking."""

import pytest

from repro.kernels import get_kernel
from repro.synth.device import FpgaDevice
from repro.synth.linker import ChannelSpec, link


def mixed_channels():
    return [
        ChannelSpec(get_kernel(2), n_pe=32, n_b=4),   # global aligner
        ChannelSpec(get_kernel(3), n_pe=32, n_b=4),   # local aligner
        ChannelSpec(get_kernel(14), n_pe=16, n_b=2),  # sDTW filter
    ]


class TestLink:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            link([])

    def test_single_channel(self):
        design = link([ChannelSpec(get_kernel(1), n_pe=32, n_b=2)])
        assert design.feasible
        assert design.total_throughput() == design.channel_throughput(0)

    def test_mixed_global_local(self):
        """The paper's example: a mix of global and local aligners."""
        design = link(mixed_channels())
        assert design.feasible
        assert len(design.reports) == 3
        assert design.total_throughput() == pytest.approx(
            sum(design.channel_throughput(k) for k in range(3))
        )

    def test_clock_set_by_slowest_channel(self):
        fast_only = link([ChannelSpec(get_kernel(1))])
        with_slow = link(
            [ChannelSpec(get_kernel(1)), ChannelSpec(get_kernel(10))]
        )
        assert fast_only.clock_mhz == 250.0
        assert with_slow.clock_mhz == 125.0  # Viterbi closes at 125 MHz

    def test_slow_clock_penalises_fast_channel(self):
        alone = link([ChannelSpec(get_kernel(1), n_b=2)])
        linked = link(
            [ChannelSpec(get_kernel(1), n_b=2), ChannelSpec(get_kernel(10))]
        )
        assert linked.channel_throughput(0) == pytest.approx(
            alone.channel_throughput(0) * 125.0 / 250.0
        )

    def test_overflow_detected(self):
        tiny = FpgaDevice("tiny", luts=50_000, ffs=100_000, bram36=100, dsps=100)
        design = link(mixed_channels(), device=tiny)
        assert not design.feasible
        assert design.overflows()

    def test_summary_renders(self):
        text = link(mixed_channels()).summary()
        assert "ch0" in text and "total" in text and "sdtw" in text

    def test_resources_additive(self):
        design = link(mixed_channels())
        combined_lut = sum(r.total.luts for r in design.reports)
        assert combined_lut > max(r.total.luts for r in design.reports)
