"""Tests for the sensitivity analysis and the DP-matrix visualization."""

import pytest

from repro.core.alphabet import encode_dna
from repro.experiments.matrix_viz import render_dp_matrix
from repro.experiments.sensitivity import render, run_sensitivity
from repro.kernels import get_kernel


class TestSensitivity:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_sensitivity(factors=(0.8, 1.25))

    def test_constants_restored_after_run(self, rows):
        from repro.baselines.cpu import SeqAn3Model
        from repro.systolic import engine

        assert engine.INTERFACE_CYCLES_PER_BASE == 4
        assert SeqAn3Model.CELLS_PER_SEC == 1.28e11

    def test_directions_never_flip(self, rows):
        """±25 % on any calibrated constant keeps every headline claim."""
        for row in rows:
            if row.output == "seqan_min_speedup":
                assert row.perturbed_value > 1.0  # DP-HLS still wins
            if row.output == "gact_margin_pct":
                assert 0.0 < row.perturbed_value < 20.0  # RTL still ahead
            if row.output == "kernel1_aln_per_sec":
                assert row.perturbed_value > 1e6

    def test_elasticity_bounded(self, rows):
        assert all(abs(r.relative_change) < 0.30 for r in rows)

    def test_interface_constant_moves_throughput(self, rows):
        moved = [
            r for r in rows
            if r.constant == "INTERFACE_CYCLES_PER_BASE"
            and r.output == "kernel1_aln_per_sec"
        ]
        assert all(abs(r.relative_change) > 0.05 for r in moved)

    def test_seqan_constant_only_moves_seqan(self, rows):
        unaffected = [
            r for r in rows
            if r.constant == "SeqAn3Model.CELLS_PER_SEC"
            and r.output != "seqan_min_speedup"
        ]
        assert all(r.relative_change == 0.0 for r in unaffected)

    def test_render(self, rows):
        text = render(rows)
        assert "INTERFACE_CYCLES_PER_BASE" in text


class TestMatrixViz:
    def test_render_marks_path(self):
        text = render_dp_matrix(
            get_kernel(1), encode_dna("GATTACA"), encode_dna("GCATGCA")
        )
        assert "[0]" in text  # corner cell is on the global path
        assert text.count("[") == 8  # 7 query rows + the corner

    def test_margins_show_sequences(self):
        text = render_dp_matrix(
            get_kernel(1), encode_dna("ACG"), encode_dna("AG")
        )
        lines = text.split("\n")
        assert lines[1].split() == ["A", "G"]
        assert [ln[0] for ln in lines[3:]] == ["A", "C", "G"]

    def test_score_only_kernel(self):
        text = render_dp_matrix(get_kernel(14), (10, 20), (10, 15, 20))
        assert "score only" in text

    def test_banded_kernel_shows_sentinels(self):
        from repro.kernels.variants import make_banded

        spec = make_banded(get_kernel(1), 1)
        text = render_dp_matrix(spec, encode_dna("ACGTAC"), encode_dna("ACGTAC"))
        assert "·" in text  # out-of-band cells

    def test_size_limit(self):
        with pytest.raises(ValueError, match="teaching"):
            render_dp_matrix(
                get_kernel(1), encode_dna("A" * 50), encode_dna("A" * 50)
            )

    def test_local_kernel_partial_path(self):
        text = render_dp_matrix(
            get_kernel(3), encode_dna("TTGATTACA"), encode_dna("CCGATTACA")
        )
        assert "[" in text
