"""Tests for the DeviceRuntime host API."""

import pytest

from repro.host import DeviceRuntime
from repro.kernels import get_kernel
from repro.kernels.global_linear import ScoringParams
from repro.synth import LaunchConfig
from tests.conftest import mutated_copy, random_dna


def small_config(**overrides):
    base = dict(n_pe=8, n_b=2, n_k=2, max_query_len=64, max_ref_len=64)
    base.update(overrides)
    return LaunchConfig(**base)


def pairs(n, length=40):
    out = []
    for k in range(n):
        ref = random_dna(length, seed=100 + k)
        out.append((mutated_copy(ref, 200 + k)[:length], ref))
    return out


class TestDeviceRuntime:
    def test_align_one(self):
        runtime = DeviceRuntime(get_kernel(1), small_config())
        q, r = pairs(1)[0]
        result = runtime.align_one(q, r)
        assert result.alignment is not None

    def test_align_batch_results_and_performance(self):
        runtime = DeviceRuntime(get_kernel(1), small_config())
        outcome = runtime.align_batch(pairs(8))
        assert len(outcome.results) == 8
        assert outcome.alignments_per_sec > 0
        assert 0 < outcome.utilization <= 1.0

    def test_batch_uses_all_blocks(self):
        narrow = DeviceRuntime(get_kernel(1), small_config(n_b=1, n_k=1))
        wide = DeviceRuntime(get_kernel(1), small_config(n_b=2, n_k=2))
        batch = pairs(16)
        slow = narrow.align_batch(batch)
        fast = wide.align_batch(batch)
        assert fast.alignments_per_sec > 2 * slow.alignments_per_sec

    def test_custom_params(self):
        harsh = ScoringParams(match=1, mismatch=-9, linear_gap=-9)
        default_rt = DeviceRuntime(get_kernel(1), small_config())
        harsh_rt = DeviceRuntime(get_kernel(1), small_config(), params=harsh)
        q, r = pairs(1)[0]
        assert harsh_rt.align_one(q, r).score <= default_rt.align_one(q, r).score

    def test_infeasible_config_rejected(self):
        with pytest.raises(ValueError, match="does not fit"):
            DeviceRuntime(
                get_kernel(8), LaunchConfig(n_pe=32, n_b=16, n_k=8)
            )

    def test_over_length_pair_rejected(self):
        runtime = DeviceRuntime(get_kernel(1), small_config())
        long_pair = pairs(1, length=100)[0]
        with pytest.raises(ValueError, match="tiling"):
            runtime.align_one(*long_pair)

    def test_empty_batch_rejected(self):
        runtime = DeviceRuntime(get_kernel(1), small_config())
        with pytest.raises(ValueError):
            runtime.align_batch([])

    def test_empty_submit_is_a_noop(self):
        """submit([]) returns an empty outcome (the service batcher may
        legitimately flush nothing); align_batch keeps its historical
        raise."""
        runtime = DeviceRuntime(get_kernel(1), small_config())
        outcome = runtime.submit([])
        assert outcome.results == []
        assert outcome.errors == []
        assert outcome.schedule.makespan_cycles == 0
        assert outcome.utilization == 0.0
        assert outcome.alignments_per_sec == 0.0

    def test_ii_propagates_from_synthesis(self):
        runtime = DeviceRuntime(
            get_kernel(9), small_config(n_b=1, n_k=1)
        )
        from repro.data.signals import random_complex_signal, warp_signal

        ref = random_complex_signal(32, seed=1)
        qry = warp_signal(ref, seed=2)[:32]
        result = runtime.align_one(qry, ref)
        assert result.cycles.ii == 4  # DTW's multiplier-bound II
