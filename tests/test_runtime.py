"""Tests for the DeviceRuntime host API."""

import pytest

from repro.host import DeviceRuntime, RunOptions
from repro.kernels import get_kernel
from repro.kernels.global_linear import ScoringParams
from repro.synth import LaunchConfig
from tests.conftest import mutated_copy, random_dna


def small_config(**overrides):
    base = dict(n_pe=8, n_b=2, n_k=2, max_query_len=64, max_ref_len=64)
    base.update(overrides)
    return LaunchConfig(**base)


def pairs(n, length=40):
    out = []
    for k in range(n):
        ref = random_dna(length, seed=100 + k)
        out.append((mutated_copy(ref, 200 + k)[:length], ref))
    return out


class TestDeviceRuntime:
    def test_run_single_pair(self):
        runtime = DeviceRuntime(get_kernel(1), small_config())
        q, r = pairs(1)[0]
        outcome = runtime.run([(q, r)])
        assert outcome.results[0].alignment is not None
        assert outcome.errors == []

    def test_run_results_and_performance(self):
        runtime = DeviceRuntime(get_kernel(1), small_config())
        outcome = runtime.run(pairs(8))
        assert len(outcome.results) == 8
        assert outcome.alignments_per_sec > 0
        assert 0 < outcome.utilization <= 1.0

    def test_batch_uses_all_blocks(self):
        narrow = DeviceRuntime(get_kernel(1), small_config(n_b=1, n_k=1))
        wide = DeviceRuntime(get_kernel(1), small_config(n_b=2, n_k=2))
        batch = pairs(16)
        slow = narrow.run(batch)
        fast = wide.run(batch)
        assert fast.alignments_per_sec > 2 * slow.alignments_per_sec

    def test_workers_is_keyword_only(self):
        runtime = DeviceRuntime(get_kernel(1), small_config())
        with pytest.raises(TypeError):
            runtime.run(pairs(1), 2)  # noqa: B026 - the point of the test

    def test_custom_params(self):
        harsh = ScoringParams(match=1, mismatch=-9, linear_gap=-9)
        default_rt = DeviceRuntime(get_kernel(1), small_config())
        harsh_rt = DeviceRuntime(get_kernel(1), small_config(), params=harsh)
        q, r = pairs(1)[0]
        harsh_score = harsh_rt.run([(q, r)]).results[0].score
        default_score = default_rt.run([(q, r)]).results[0].score
        assert harsh_score <= default_score

    def test_infeasible_config_rejected(self):
        with pytest.raises(ValueError, match="does not fit"):
            DeviceRuntime(
                get_kernel(8), LaunchConfig(n_pe=32, n_b=16, n_k=8)
            )

    def test_over_length_pair_isolated(self):
        """A too-long pair becomes a structured error, not an abort."""
        runtime = DeviceRuntime(get_kernel(1), small_config())
        long_pair = pairs(1, length=100)[0]
        outcome = runtime.run([long_pair])
        assert outcome.results == [None]
        assert len(outcome.errors) == 1
        assert "tiling" in outcome.errors[0].message

    def test_empty_run_is_a_noop(self):
        """run([]) returns an empty outcome (the service batcher may
        legitimately flush nothing)."""
        runtime = DeviceRuntime(get_kernel(1), small_config())
        outcome = runtime.run([])
        assert outcome.results == []
        assert outcome.errors == []
        assert outcome.schedule.makespan_cycles == 0
        assert outcome.utilization == 0.0
        assert outcome.alignments_per_sec == 0.0

    def test_ii_propagates_from_synthesis(self):
        runtime = DeviceRuntime(
            get_kernel(9), small_config(n_b=1, n_k=1)
        )
        from repro.data.signals import random_complex_signal, warp_signal

        ref = random_complex_signal(32, seed=1)
        qry = warp_signal(ref, seed=2)[:32]
        result = runtime.run([(qry, ref)]).results[0]
        assert result.cycles.ii == 4  # DTW's multiplier-bound II


class TestRunOptions:
    """The unified RunOptions surface and its legacy-kwarg adapter."""

    def test_options_workers_matches_legacy_workers(self):
        runtime = DeviceRuntime(get_kernel(1), small_config())
        batch = pairs(4)
        via_options = runtime.run(batch, options=RunOptions(workers=1))
        with pytest.warns(DeprecationWarning, match="RunOptions"):
            via_legacy = runtime.run(batch, workers=1)
        assert via_options.results == via_legacy.results
        assert via_options.schedule == via_legacy.schedule

    def test_legacy_timeout_kwarg_warns(self):
        runtime = DeviceRuntime(get_kernel(1), small_config())
        with pytest.warns(DeprecationWarning, match="deprecated"):
            outcome = runtime.run(pairs(1), timeout=60.0)
        assert outcome.errors == []

    def test_options_and_legacy_kwargs_are_exclusive(self):
        runtime = DeviceRuntime(get_kernel(1), small_config())
        with pytest.raises(TypeError, match="not both"):
            runtime.run(pairs(1), options=RunOptions(), workers=1)

    def test_unknown_kwarg_rejected(self):
        runtime = DeviceRuntime(get_kernel(1), small_config())
        with pytest.raises(TypeError, match="unexpected keyword"):
            runtime.run(pairs(1), wrokers=2)

    def test_invalid_options_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            RunOptions(workers=0)
        with pytest.raises(ValueError, match="timeout"):
            RunOptions(timeout=-1.0)

    def test_per_call_backend_override_is_bit_identical(self):
        runtime = DeviceRuntime(get_kernel(1), small_config())
        batch = pairs(3)
        systolic = runtime.run(batch)
        compiled = runtime.run(batch, options=RunOptions(backend="compiled"))
        assert [r.score for r in systolic.results] == [
            r.score for r in compiled.results
        ]
        assert [r.alignment.cigar for r in systolic.results] == [
            r.alignment.cigar for r in compiled.results
        ]

    def test_deleted_shims_are_gone(self):
        runtime = DeviceRuntime(get_kernel(1), small_config())
        for name in ("align_one", "align_batch", "submit"):
            assert not hasattr(runtime, name)
