"""Tests for shifting-load profiles and duration-bounded load runs."""

import pytest

from repro.host import DeviceRuntime
from repro.kernels import get_kernel
from repro.service import (
    BatcherConfig,
    DevicePool,
    InProcClient,
    LoadGenerator,
    LoadProfile,
    LoadReport,
    ServiceCore,
)
from repro.synth import LaunchConfig
from tests.conftest import mutated_copy, random_dna


def small_config():
    return LaunchConfig(n_pe=8, n_b=4, n_k=1,
                        max_query_len=64, max_ref_len=64)


def make_workload(n, length=16):
    out = []
    for k in range(n):
        ref = random_dna(length, seed=500 + k)
        out.append((1, mutated_copy(ref, 900 + k)[:length], ref))
    return out


class TestLoadProfileParsing:
    def test_const_default(self):
        profile = LoadProfile.parse("const")
        assert profile.at(0.0) == 1.0
        assert profile.at(100.0) == 1.0
        assert profile.phase_bounds() == []

    def test_step(self):
        profile = LoadProfile.parse("step:10:4")
        assert profile.at(9.99) == 1.0
        assert profile.at(10.0) == 4.0
        assert profile.at(60.0) == 4.0
        assert profile.phase_bounds() == [10.0]
        assert profile.describe() == "step:10:4"

    def test_ramp(self):
        profile = LoadProfile.parse("ramp:10:20:3")
        assert profile.at(5.0) == 1.0
        assert profile.at(15.0) == pytest.approx(2.0)
        assert profile.at(25.0) == 3.0
        assert profile.phase_bounds() == [10.0, 20.0]

    def test_roundtrip_through_describe(self):
        for text in ("const:2", "step:5:3.5", "ramp:1:4:0.5"):
            profile = LoadProfile.parse(text)
            again = LoadProfile.parse(profile.describe())
            assert again == profile

    def test_invalid_specs_rejected(self):
        for bad in ("", "step:10", "ramp:5:1:2", "wiggle:1:2",
                    "step:-1:2", "step:1:0"):
            with pytest.raises(ValueError):
                LoadProfile.parse(bad)


class TestWindowPercentiles:
    def test_window_selects_completions(self):
        report = LoadReport(
            offered_rps=1.0, sent=4, ok=4, rejected=0, errors=0,
            elapsed_s=4.0, latencies_ms=[10.0, 20.0, 30.0, 40.0],
            samples=[(0.5, 10.0), (1.5, 20.0), (2.5, 30.0), (3.5, 40.0)],
        )
        assert report.window_latencies_ms(1.0, 3.0) == [20.0, 30.0]
        assert report.window_percentile_ms(1.0, 3.0, 0.99) == \
            pytest.approx(30.0, rel=0.01)
        assert report.window_percentile_ms(10.0, 20.0, 0.5) is None

    def test_merge_pools_samples(self):
        a = LoadReport(
            offered_rps=1.0, sent=1, ok=1, rejected=0, errors=0,
            elapsed_s=1.0, latencies_ms=[5.0], samples=[(0.9, 5.0)],
        )
        b = LoadReport(
            offered_rps=1.0, sent=1, ok=1, rejected=0, errors=0,
            elapsed_s=1.0, latencies_ms=[7.0], samples=[(0.1, 7.0)],
        )
        merged = LoadReport.merge([a, b])
        assert merged.samples == [(0.1, 7.0), (0.9, 5.0)]


class TestDurationAndProfileRuns:
    @pytest.fixture
    def core(self):
        core = ServiceCore(
            DevicePool([DeviceRuntime(get_kernel(1), small_config())]),
            BatcherConfig(max_batch=8, max_delay_ms=5.0,
                          max_queue_depth=256),
        ).start()
        yield core
        core.stop()

    def test_duration_bounds_the_run(self, core):
        generator = LoadGenerator(InProcClient(core), make_workload(8),
                                  seed=3)
        report = generator.run(200.0, duration_s=0.5)
        assert report.sent > 0
        assert report.ok == report.sent
        assert report.errors == 0
        # Samples stamp completion offsets for phase-wise analysis.
        assert len(report.samples) == report.ok
        assert all(offset >= 0.0 for offset, _ in report.samples)

    def test_requires_some_bound(self, core):
        generator = LoadGenerator(InProcClient(core), make_workload(4))
        with pytest.raises(ValueError):
            generator.run(10.0)

    def test_step_profile_shifts_offered_load(self, core):
        generator = LoadGenerator(InProcClient(core), make_workload(8),
                                  seed=11)
        profile = LoadProfile.parse("step:0.5:6")
        report = generator.run(60.0, duration_s=1.0, profile=profile)
        early = len(report.window_latencies_ms(0.0, 0.5))
        late = len(report.window_latencies_ms(0.5, 10.0))
        # The step multiplies arrivals 6x; completions follow.
        assert late > early
        assert report.ok == report.sent

    def test_profile_threads_through_run_concurrent(self, core):
        generator = LoadGenerator(InProcClient(core), make_workload(8),
                                  seed=5)
        profile = LoadProfile.parse("step:0.2:4")
        report = generator.run_concurrent(
            100.0, n_requests=60, concurrency=2, profile=profile
        )
        assert report.sent == 60
        assert len(report.samples) == report.ok
