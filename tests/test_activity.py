"""Tests for the PE activity / occupancy analyzer."""

import pytest

from repro.systolic.activity import analyze_activity, render_occupancy
from repro.systolic.schedule import count_cycles


class TestAnalyze:
    def test_cell_count_exact(self):
        report = analyze_activity(12, 20, 4)
        assert report.cell_evaluations == 12 * 20

    def test_slots_match_schedule(self):
        report = analyze_activity(12, 20, 4)
        compute, _ = count_cycles(12, 20, 4)
        assert report.issue_slots == compute

    def test_utilization_bounds(self):
        report = analyze_activity(16, 16, 4)
        assert 0.0 < report.utilization <= 1.0

    def test_single_pe_fully_utilised(self):
        report = analyze_activity(10, 10, 1)
        assert report.utilization == 1.0
        assert report.idle_slots == 0

    def test_utilization_decays_with_npe(self):
        """The Fig. 3 saturation mechanism: edge idling grows with N_PE."""
        utils = [
            analyze_activity(64, 64, n_pe).utilization for n_pe in (1, 4, 16, 64)
        ]
        assert utils == sorted(utils, reverse=True)

    def test_banding_reduces_evaluations(self):
        full = analyze_activity(64, 64, 8)
        banded = analyze_activity(64, 64, 8, banding=8)
        assert banded.cell_evaluations < full.cell_evaluations
        expected = sum(
            1 for i in range(1, 65) for j in range(1, 65) if abs(i - j) <= 8
        )
        assert banded.cell_evaluations == expected

    def test_per_pe_balance(self):
        """In an even chunking every PE evaluates the same cell count."""
        report = analyze_activity(16, 20, 4)  # 16 rows / 4 PEs: even chunks
        assert len(set(report.per_pe_active)) == 1


class TestRender:
    def test_staircase_pattern(self):
        text = render_occupancy(8, 10, 4)
        lines = text.split("\n")
        pe_lines = [
            ln for ln in lines
            if ln.startswith("PE") and "occupancy" not in ln
        ]
        assert len(pe_lines) == 4
        # PE p starts p slots after PE 0 (the systolic skew)
        starts = [ln.split(None, 1)[1].index("#") for ln in pe_lines]
        assert starts == [0, 1, 2, 3]

    def test_truncation(self):
        text = render_occupancy(64, 300, 2, max_width=50)
        for line in text.split("\n"):
            if line.startswith("PE") and "occupancy" not in line:
                assert len(line) <= 6 + 50 + 1  # "PEnnn " prefix + ellipsis

    def test_utilization_line(self):
        assert "utilization" in render_occupancy(8, 8, 2)
