"""Tests for the end-to-end Fig. 2A flow orchestrator."""

import pytest

from repro.flow import run_flow
from repro.kernels import get_kernel
from repro.synth import LaunchConfig
from tests.conftest import mutated_copy, random_dna


def workload(n=2, length=20, seed=0):
    pairs = []
    for k in range(n):
        ref = random_dna(length, seed=seed + k)
        pairs.append((mutated_copy(ref, seed + 100 + k)[:length], ref))
    return pairs


class TestRunFlow:
    def test_healthy_kernel_passes(self):
        result = run_flow(
            get_kernel(2), workload(), LaunchConfig(n_pe=16, n_b=2)
        )
        assert result.passed
        assert result.verification.passed
        assert result.synthesis.feasible
        assert "module global_affine_pe" in result.rtl_skeleton

    def test_summary_contains_all_stages(self):
        result = run_flow(get_kernel(1), workload(), LaunchConfig(n_pe=8))
        text = result.summary()
        for stage in ("C-simulation", "synthesis", "co-simulation",
                      "implementation", "verdict"):
            assert stage in text

    def test_infeasible_config_fails_flow(self):
        result = run_flow(
            get_kernel(8),
            [p for p in _profile_pairs()],
            LaunchConfig(n_pe=32, n_b=16, n_k=8),
        )
        assert result.verification.passed
        assert not result.synthesis.feasible
        assert not result.passed

    def test_custom_kernel_through_flow(self):
        """A user kernel goes through the same gate as shipped ones."""
        import runpy
        from pathlib import Path

        ns = runpy.run_path(
            str(Path(__file__).parent.parent / "examples" / "custom_kernel.py"),
            run_name="imported",
        )
        result = run_flow(ns["EDIT_DISTANCE"], workload(), LaunchConfig(n_pe=8))
        assert result.passed


def _profile_pairs():
    from repro.data.profiles import profile_pair

    p1, p2 = profile_pair(n_cols=10, seed=1)
    return [(p1, p2)]
