"""Traceback optimality: replaying a reported path reproduces its score.

For every traceback kernel, the alignment the engine recovers is re-scored
by an independent walker over the scoring model; the result must equal the
reported optimal score exactly (fixed-point kernels) or to quantization
tolerance (fixed-point fraction kernels).
"""

import numpy as np
import pytest

from repro.kernels import get_kernel
from repro.reference.rescore import (
    rescore_affine,
    rescore_dtw,
    rescore_linear,
    rescore_matrix_linear,
    rescore_two_piece,
)
from repro.systolic import align
from tests.conftest import mutated_copy, random_dna


def dna_case(seed, n=30, m=34):
    ref = random_dna(m, seed)
    return mutated_copy(ref, seed + 7)[:n], ref


@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("kid", (1, 3, 6, 7, 11))
def test_linear_kernels_path_score(kid, seed):
    spec = get_kernel(kid)
    if kid == 11:
        q = random_dna(30, seed)
        r = random_dna(30, seed + 1)
    else:
        q, r = dna_case(seed + kid)
    result = align(spec, q, r, n_pe=4)
    p = spec.default_params
    rescored = rescore_linear(
        result.alignment, q, r, p.match, p.mismatch, p.linear_gap
    )
    assert rescored == result.score


@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("kid", (2, 4))
def test_affine_kernels_path_score(kid, seed):
    spec = get_kernel(kid)
    q, r = dna_case(seed + 50 + kid)
    result = align(spec, q, r, n_pe=4)
    p = spec.default_params
    rescored = rescore_affine(
        result.alignment, q, r, p.match, p.mismatch, p.gap_open, p.gap_extend
    )
    assert rescored == result.score


@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("kid", (5, 13))
def test_two_piece_kernels_path_score(kid, seed):
    spec = get_kernel(kid)
    n = 30
    q = random_dna(n, seed + kid)
    r = random_dna(n, seed + kid + 1)
    result = align(spec, q, r, n_pe=4)
    p = spec.default_params
    rescored = rescore_two_piece(
        result.alignment, q, r, p.match, p.mismatch,
        p.gap_open1, p.gap_extend1, p.gap_open2, p.gap_extend2,
    )
    assert rescored == result.score


@pytest.mark.parametrize("seed", range(3))
def test_protein_path_score(seed):
    from repro.data.protein import mutate_protein, random_protein

    spec = get_kernel(15)
    ref = random_protein(26, seed=seed)
    qry = mutate_protein(ref, seed=seed + 1)[:26]
    result = align(spec, qry, ref, n_pe=4)
    p = spec.default_params
    rescored = rescore_matrix_linear(result.alignment, qry, ref, p.matrix, p.linear_gap)
    assert rescored == result.score


@pytest.mark.parametrize("seed", range(3))
def test_dtw_path_cost(seed):
    from repro.data.signals import random_complex_signal, warp_signal

    spec = get_kernel(9)
    ref = random_complex_signal(18, seed=seed)
    qry = warp_signal(ref, seed=seed + 1)[:18]
    result = align(spec, qry, ref, n_pe=4)
    rescored = rescore_dtw(result.alignment, qry, ref)
    assert np.isclose(rescored, result.score, atol=1e-2)


def test_inconsistent_path_rejected():
    from repro.core.result import Alignment, Move

    bad = Alignment((Move.MATCH,), 0, 2, 0, 1)  # claims 2 query symbols
    with pytest.raises(ValueError, match="inconsistent"):
        rescore_linear(bad, (0, 1), (0,), 2, -2, -3)
