"""End-to-end tests of the streaming read-mapping pipeline.

The four production claims of :mod:`repro.pipeline`:

* a flowcell maps to *valid, correctly placed* SAM with zero dropped
  chunks;
* the SAM bytes are identical whether tiles run on the in-process
  runtime or through the 2-shard service front door;
* memory stays flat as the flowcell doubles (streaming, not batch);
* a recorded tile trace replays with a deterministic cache-hit profile.
"""

import tracemalloc

import pytest

from repro.data.fastq import write_flowcell
from repro.data.genome import random_genome
from repro.data.sam import iter_sam
from repro.pipeline import (
    ServiceTileDispatcher,
    map_flowcell,
    read_trace,
    summarize_trace,
)

GENOME_LEN = 40_000
READS = 6
READ_LEN = 256


@pytest.fixture(scope="module")
def genome():
    """One module-wide reference genome."""
    return random_genome(GENOME_LEN, seed=21)


@pytest.fixture(scope="module")
def flowcell(genome, tmp_path_factory):
    """A small simulated flowcell FASTQ on disk."""
    path = tmp_path_factory.mktemp("flowcell") / "reads.fastq"
    n = write_flowcell(
        path, genome, READS, length=READ_LEN, error_rate=0.12, seed=22
    )
    assert n == READS
    return path


class TestEndToEnd:
    def test_maps_flowcell_to_valid_placed_sam(self, genome, flowcell,
                                               tmp_path):
        out = tmp_path / "out.sam"
        report = map_flowcell(flowcell, genome, out, chunk_size=2)
        assert report.reads == READS
        assert report.mapped > 0
        assert report.pipeline.dropped == 0
        assert report.tiles > 0
        # per-stage stats exist for both stages
        assert {s.name for s in report.pipeline.stages} == {"seed", "extend"}
        records = list(iter_sam(out))  # iter_sam validates CIGAR vs SEQ
        assert len(records) == READS
        placed = 0
        for record in records:
            if not record.mapped:
                continue
            truth = int(record.name.split("pos=")[1])
            if abs(record.position - truth) <= 2 * 32:
                placed += 1
        assert placed >= report.mapped * 2 // 3
        assert all(0 <= r.mapq <= 60 for r in records)

    def test_cached_rerun_is_byte_identical_and_all_hits(
        self, genome, flowcell, tmp_path
    ):
        from repro.cache.facade import CacheStack

        stack = CacheStack()
        cold_sam = tmp_path / "cold.sam"
        warm_sam = tmp_path / "warm.sam"
        cold = map_flowcell(flowcell, genome, cold_sam, cache=stack)
        warm = map_flowcell(flowcell, genome, warm_sam, cache=stack)
        assert cold.tile_hit_rate == 0.0
        assert warm.tile_hit_rate == 1.0
        assert cold_sam.read_bytes() == warm_sam.read_bytes()


class TestServiceByteIdentity:
    def test_inproc_vs_two_shard_front_door(self, genome, flowcell,
                                            tmp_path):
        """Identical SAM bytes whether tiles run locally or through the
        multi-process sharded service."""
        from repro.service import AlignmentClient
        from repro.shard import Deployment, ShardServer

        local_sam = tmp_path / "local.sam"
        local = map_flowcell(flowcell, genome, local_sam)
        assert local.mapped > 0

        deployment = Deployment(
            kernel_ids=(1,), n_pe=32, max_len=128, backend="compiled",
        )
        server = ShardServer(
            ("127.0.0.1", 0), deployment, n_shards=2
        ).start()
        try:
            client = AlignmentClient(*server.address, read_timeout=120.0)
            dispatcher = ServiceTileDispatcher(client, kernel_id=1)
            shard_sam = tmp_path / "sharded.sam"
            sharded = map_flowcell(
                flowcell, genome, shard_sam, dispatcher=dispatcher
            )
        finally:
            server.close()
        assert sharded.mapped == local.mapped
        assert shard_sam.read_bytes() == local_sam.read_bytes()


class TestBoundedMemory:
    def test_peak_memory_flat_as_flowcell_doubles(self, genome,
                                                  tmp_path):
        """Peak traced memory must not scale with flowcell size: the
        pipeline holds chunks, not the dataset."""
        def run(n_reads: int) -> float:
            fastq = tmp_path / f"fc_{n_reads}.fastq"
            write_flowcell(
                fastq, genome, n_reads, length=READ_LEN,
                error_rate=0.12, seed=23,
            )
            out = tmp_path / f"out_{n_reads}.sam"
            tracemalloc.start()
            try:
                report = map_flowcell(
                    fastq, genome, out, chunk_size=2, queue_bound=2
                )
                _, peak = tracemalloc.get_traced_memory()
            finally:
                tracemalloc.stop()
            assert report.reads == n_reads
            return float(peak)

        small = run(4)
        large = run(8)
        assert large <= small * 1.6, (
            f"peak grew {large / small:.2f}x when the flowcell doubled "
            f"({small:.0f} -> {large:.0f} bytes)"
        )


class TestTraceReplay:
    def _record(self, genome, flowcell, tmp_path):
        trace = tmp_path / "tiles.jsonl"
        report = map_flowcell(
            flowcell, genome, tmp_path / "traced.sam", trace_path=trace
        )
        assert report.trace_records == report.tiles
        return trace

    def _replay_misses(self, workload):
        """Replay a workload against a fresh cached in-proc service;
        returns (ok, cache_misses, cache_hits)."""
        from repro.service import InProcClient, LoadGenerator
        from repro.shard import Deployment

        deployment = Deployment(
            kernel_ids=(1,), n_pe=32, max_len=128, backend="compiled",
            cache_dir=None,
        )
        from repro.cache.facade import CacheStack

        core = deployment.build_core(cache=CacheStack()).start()
        try:
            generator = LoadGenerator(InProcClient(core), workload)
            report = generator.replay(window=8)
            counters = core.metrics_snapshot()["counters"]
        finally:
            core.stop()
        return (
            report.ok,
            counters.get("cache_misses_total", 0),
            counters.get("cache_hits_total", 0),
        )

    def test_replay_reproduces_cache_hit_profile(self, genome, flowcell,
                                                 tmp_path):
        trace = self._record(genome, flowcell, tmp_path)
        workload = read_trace(trace)
        summary = summarize_trace(workload)
        assert summary.requests > 0

        ok_a, misses_a, hits_a = self._replay_misses(workload)
        ok_b, misses_b, hits_b = self._replay_misses(workload)
        # every request answers, and the miss profile is a pure function
        # of the trace: distinct tiles miss, repeats hit
        assert ok_a == summary.requests == ok_b
        assert misses_a == summary.distinct == misses_b
        assert hits_a == hits_b
