"""Property tests pinning the autoscaler's safety invariants.

Three invariants, each driven adversarially:

* **inventory safety** — whatever randomized demand says, a plan that
  leaves the planner fits the device budget (or ``PlanInfeasible`` is
  raised; an oversubscribed plan is never returned);
* **hysteresis bound** — however violated the signals are and however
  the clock advances, the number of successful scaling actions inside
  any ``window_s`` sliding window never exceeds
  ``max_actions_per_window``;
* **drain safety** — concurrent executes racing a ``retire_member``
  never lose a pair: every submitted batch resolves, error-free, even
  when its member is retired mid-flight.
"""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autoscale import (
    Actuator,
    AutoscaleController,
    DemandSample,
    KernelSignal,
    PlanInfeasible,
    Planner,
    SloPolicy,
    default_runtime_factory,
)
from repro.host import DeviceRuntime
from repro.kernels import get_kernel
from repro.service.pool import DevicePool
from repro.synth import LaunchConfig
from repro.synth.dse import budget_caps
from tests.conftest import mutated_copy, random_dna

SMALL_PLANNER = dict(
    max_query_len=64, max_ref_len=64,
    n_pe_choices=(16, 32), n_b_choices=(1, 4),
)

signal_st = st.builds(
    KernelSignal,
    kernel_id=st.just(0),  # overwritten below
    replicas=st.integers(1, 8),
    draining=st.integers(0, 2),
    in_flight=st.integers(0, 64),
    arrival_rps=st.floats(0.0, 500.0),
    completion_rps=st.floats(0.0, 500.0),
    rejection_rps=st.floats(0.0, 100.0),
    backlog=st.integers(0, 200),
    queue_p99_ms=st.one_of(st.none(), st.floats(0.0, 10_000.0)),
    latency_p99_ms=st.one_of(st.none(), st.floats(0.0, 10_000.0)),
)


@given(
    raw=st.dictionaries(
        st.sampled_from([1, 2, 3]), signal_st, min_size=1, max_size=3
    ),
    budget_fraction=st.floats(0.02, 1.0),
    max_replicas=st.integers(1, 8),
)
@settings(max_examples=60, deadline=None)
def test_planner_never_exceeds_inventory(raw, budget_fraction, max_replicas):
    """Random demand -> the plan fits the budget, or it raises."""
    policy = SloPolicy(
        p99_target_ms=100.0,
        max_replicas=max_replicas,
        budget_fraction=budget_fraction,
    )
    planner = Planner(policy, **SMALL_PLANNER)
    signals = {
        kernel_id: KernelSignal(**{
            **{f: getattr(sig, f) for f in sig.__dataclass_fields__},
            "kernel_id": kernel_id,
        })
        for kernel_id, sig in raw.items()
    }
    try:
        plan = planner.plan(signals)
    except PlanInfeasible:
        return  # refusing is the safe outcome
    caps = budget_caps(budget_fraction, policy.device)
    usage = plan.usage()
    for kind, cap in caps.items():
        assert usage[kind] <= cap + 1e-9
    for entry in plan.kernels:
        assert 1 <= entry.replicas <= max_replicas


class _MirrorWatcher:
    """Signals that track the live pool but stay maximally violated."""

    def __init__(self, pool, p99s):
        self.pool = pool
        self._p99s = iter(p99s)
        self.at = 0.0

    def sample(self):
        counts = self.pool.replica_counts()
        p99 = next(self._p99s)
        return DemandSample(
            at_s=self.at, interval_s=1.0,
            kernels={
                kernel_id: KernelSignal(
                    kernel_id=kernel_id, replicas=n, draining=0,
                    in_flight=0, arrival_rps=50.0, completion_rps=10.0,
                    rejection_rps=0.0, backlog=10,
                    queue_p99_ms=None, latency_p99_ms=p99,
                )
                for kernel_id, n in counts.items()
            },
        )


@given(
    deltas=st.lists(st.floats(0.05, 4.0), min_size=4, max_size=12),
    p99s=st.lists(st.floats(150.0, 5000.0), min_size=12, max_size=12),
    cap=st.integers(1, 3),
)
@settings(max_examples=25, deadline=None)
def test_hysteresis_bounds_actions_per_window(deltas, p99s, cap):
    """No clock pattern squeezes more actions into a window than the cap."""
    window_s = 5.0
    policy = SloPolicy(
        p99_target_ms=100.0, cooldown_s=0.0, window_s=window_s,
        max_actions_per_window=cap, max_replicas=8,
    )
    pool = DevicePool([DeviceRuntime(
        get_kernel(1),
        LaunchConfig(n_pe=8, n_b=2, n_k=1,
                     max_query_len=64, max_ref_len=64),
    )])
    watcher = _MirrorWatcher(pool, p99s)
    now = {"t": 0.0}
    controller = AutoscaleController(
        watcher,
        Planner(policy, **SMALL_PLANNER),
        Actuator(pool, runtime_factory=default_runtime_factory(64, 64)),
        clock=lambda: now["t"],
    )
    events = []
    for delta in deltas:
        now["t"] += delta
        watcher.at = now["t"]
        decision = controller.step()
        events.extend(
            (decision.at_s, action)
            for action in decision.actions if action.ok
        )
    # Every sliding window anchored at an action start holds <= cap.
    times = [at for at, _ in events]
    for anchor in times:
        in_window = [t for t in times if anchor < t <= anchor + window_s]
        assert len(in_window) <= cap


def test_retire_never_loses_in_flight_work():
    """Batches racing a retirement all resolve without errors."""
    config = LaunchConfig(
        n_pe=8, n_b=2, n_k=1, max_query_len=64, max_ref_len=64
    )
    # pace stretches each batch to real wall time so executes genuinely
    # overlap the retirement instead of finishing before it starts.
    pool = DevicePool([
        DeviceRuntime(get_kernel(1), config, backend="compiled",
                      pace=3000.0)
        for _ in range(2)
    ])
    pairs = [
        (mutated_copy(random_dna(24, seed=10 + k), 20 + k)[:24],
         random_dna(24, seed=10 + k))
        for k in range(4)
    ]
    outcomes = []
    errors = []

    def worker(seed):
        try:
            outcome, _ = pool.execute(1, pairs)
            outcomes.append(outcome)
        except Exception as exc:  # noqa: BLE001 - the assertion target
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(k,)) for k in range(6)
    ]
    for thread in threads:
        thread.start()
    victim = pool.active_members(1)[-1]
    retired = pool.retire_member(victim.name, timeout_s=30.0)
    for thread in threads:
        thread.join(30.0)

    assert errors == []
    assert len(outcomes) == 6
    for outcome in outcomes:
        assert outcome.errors == []
        assert all(r is not None for r in outcome.results)
    assert retired.in_flight == 0
    assert pool.replica_counts() == {1: 1}
    # The survivor still serves traffic.
    outcome, _ = pool.execute(1, pairs)
    assert outcome.errors == []
