"""White-box tests of the systolic engine's internal mechanisms.

These pin behaviours the black-box equivalence tests only cover
indirectly: the preserved-row buffer handoff between chunks, sentinel
propagation at band edges, and — most interestingly — that deliberate
datapath *overflow* wraps identically in engine and oracle (both quantize
through the same hardware number type, so even wrong-width kernels stay
bit-identical across back-ends).
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.hdl_types import ap_int
from repro.kernels import get_kernel
from repro.kernels.variants import make_banded
from repro.reference import oracle_align
from repro.systolic import align
from tests.conftest import mutated_copy, random_dna


class TestChunkHandoff:
    def test_single_pe_serial_chunks(self):
        """N_PE=1 exercises the preserved-row buffer on every row."""
        spec = get_kernel(2)
        ref = random_dna(17, seed=1)
        qry = mutated_copy(ref, seed=2)
        ours = align(spec, qry, ref, n_pe=1, collect_matrix=True)
        oracle = oracle_align(spec, qry, ref, collect_matrix=True)
        assert np.allclose(ours.matrix, oracle.matrix)

    def test_chunk_boundary_rows_exact(self):
        """Rows just below a chunk boundary read the preserved buffer."""
        spec = get_kernel(1)
        n_pe = 4
        ref = random_dna(20, seed=3)
        qry = random_dna(13, seed=4)  # 4 chunks: rows 1-4, 5-8, 9-12, 13
        ours = align(spec, qry, ref, n_pe=n_pe, collect_matrix=True)
        oracle = oracle_align(spec, qry, ref, collect_matrix=True)
        for boundary_row in (5, 9, 13):
            assert np.allclose(
                ours.matrix[:, boundary_row, :],
                oracle.matrix[:, boundary_row, :],
            ), f"row {boundary_row} disagreed across the chunk boundary"

    def test_query_shorter_than_one_chunk(self):
        spec = get_kernel(1)
        ref = random_dna(12, seed=5)
        qry = random_dna(2, seed=6)
        ours = align(spec, qry, ref, n_pe=8)
        assert ours.score == oracle_align(spec, qry, ref).score


class TestBandEdges:
    def test_out_of_band_cells_stay_sentinel(self):
        spec = make_banded(get_kernel(1), 3)
        n = 12
        q, r = random_dna(n, 7), random_dna(n, 8)
        result = align(spec, q, r, n_pe=4, collect_matrix=True)
        sentinel = spec.sentinel()
        for i in range(1, n + 1):
            for j in range(1, n + 1):
                if abs(i - j) > 3:
                    assert result.matrix[0, i, j] == sentinel

    def test_band_one_is_three_diagonals(self):
        spec = make_banded(get_kernel(1), 1)
        n = 8
        q, r = random_dna(n, 9), random_dna(n, 10)
        ours = align(spec, q, r, n_pe=3)
        oracle = oracle_align(spec, q, r)
        assert ours.score == oracle.score
        assert ours.alignment.moves == oracle.alignment.moves


class TestOverflowWrapEquivalence:
    def test_deliberate_overflow_wraps_identically(self):
        """An 8-bit score type overflows on long matches — engine and
        oracle must wrap bit-identically (both quantize via ap_int)."""
        tiny = replace(
            get_kernel(1), name="nw_tiny", score_type=ap_int(8)
        )
        seq = random_dna(120, seed=11)  # score would reach 240 > 127
        ours = align(tiny, seq, seq, n_pe=4)
        oracle = oracle_align(tiny, seq, seq)
        assert ours.score == oracle.score
        assert tiny.score_type.in_range(ours.score)

    def test_wide_type_does_not_wrap(self):
        seq = random_dna(120, seed=11)
        result = align(get_kernel(1), seq, seq, n_pe=4)
        assert result.score == 240  # 120 matches x 2


class TestMatrixCapture:
    def test_init_row_col_included(self):
        spec = get_kernel(1)
        q, r = random_dna(5, 12), random_dna(7, 13)
        result = align(spec, q, r, n_pe=2, collect_matrix=True)
        gap = spec.default_params.linear_gap
        assert list(result.matrix[0, 0, :]) == [gap * j for j in range(8)]
        assert list(result.matrix[0, :, 0]) == [gap * i for i in range(6)]

    def test_matrix_shape(self):
        spec = get_kernel(2)
        q, r = random_dna(5, 14), random_dna(9, 15)
        result = align(spec, q, r, n_pe=2, collect_matrix=True)
        assert result.matrix.shape == (3, 6, 10)

    def test_no_matrix_by_default(self):
        spec = get_kernel(1)
        q, r = random_dna(5, 16), random_dna(5, 17)
        assert align(spec, q, r, n_pe=2).matrix is None
