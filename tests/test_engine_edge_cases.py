"""Edge-case tests for the systolic engine and the batch executor.

Covers the shapes the fuzzer leans on hardest: single-base queries,
query lengths not divisible by N_PE, bands narrower than one chunk of
PEs, empty batches, and worker-failure injection in the parallel host
path.
"""

import numpy as np
import pytest

from repro.host import DeviceRuntime, RunOptions
from repro.kernels import get_kernel
from repro.reference.dp_oracle import oracle_align
from repro.synth import LaunchConfig
from repro.systolic.engine import align
from tests.conftest import mutated_copy, random_dna


def _assert_engine_matches_oracle(kid, query, reference, n_pe):
    spec = get_kernel(kid)
    actual = align(spec, query, reference, n_pe=n_pe)
    expected = oracle_align(spec, query, reference)
    assert np.isclose(actual.score, expected.score), (
        f"kernel {kid} n_pe={n_pe}: engine {actual.score} "
        f"!= oracle {expected.score}"
    )
    assert actual.start == expected.start
    if spec.has_traceback and expected.alignment is not None:
        assert actual.alignment.moves == expected.alignment.moves


class TestSingleBaseQuery:
    @pytest.mark.parametrize("kid", (1, 2, 3, 4, 6, 7))
    def test_one_base_query_long_reference(self, kid):
        reference = random_dna(17, seed=kid)
        _assert_engine_matches_oracle(kid, (2,), reference, n_pe=4)

    @pytest.mark.parametrize("kid", (1, 3))
    def test_one_base_both_sides(self, kid):
        _assert_engine_matches_oracle(kid, (1,), (1,), n_pe=1)
        _assert_engine_matches_oracle(kid, (1,), (3,), n_pe=8)


class TestRaggedChunks:
    @pytest.mark.parametrize("length,n_pe", ((13, 4), (7, 8), (9, 5), (31, 8)))
    def test_query_not_divisible_by_n_pe(self, length, n_pe):
        reference = random_dna(19, seed=length)
        query = random_dna(length, seed=length + 1)
        _assert_engine_matches_oracle(2, query, reference, n_pe=n_pe)

    def test_n_pe_larger_than_query(self):
        query = random_dna(3, seed=1)
        reference = random_dna(21, seed=2)
        _assert_engine_matches_oracle(4, query, reference, n_pe=16)


class TestNarrowBand:
    @pytest.mark.parametrize("kid", (11, 12))
    def test_band_narrower_than_one_chunk(self, kid):
        """With N_PE=48 > band=32, whole PEs sit outside the band."""
        spec = get_kernel(kid)
        assert spec.banding < 48
        reference = random_dna(56, seed=3)
        query = mutated_copy(reference, seed=4, error_rate=0.1)
        n = min(len(query), len(reference))
        _assert_engine_matches_oracle(kid, query[:n], reference[:n], n_pe=48)

    def test_banded_rejects_out_of_band_lengths(self):
        spec = get_kernel(11)
        with pytest.raises(ValueError, match="band"):
            align(spec, random_dna(2, seed=5), random_dna(50, seed=6), n_pe=4)


def _runtime(**overrides):
    base = dict(n_pe=8, n_b=2, n_k=2, max_query_len=64, max_ref_len=64)
    base.update(overrides)
    return DeviceRuntime(get_kernel(1), LaunchConfig(**base))


def _pairs(n, length=24):
    out = []
    for k in range(n):
        ref = random_dna(length, seed=300 + k)
        out.append((mutated_copy(ref, 400 + k)[:length], ref))
    return out


class TestBatchEdgeCases:
    @pytest.mark.parametrize("workers", (1, 2))
    def test_empty_run_returns_empty_outcome(self, workers):
        """run([]) is a no-op batch."""
        outcome = _runtime().run([], options=RunOptions(workers=workers))
        assert outcome.results == [] and outcome.errors == []
        assert outcome.schedule.makespan_cycles == 0

    def test_single_pair_batch(self):
        outcome = _runtime().run(_pairs(1))
        assert len(outcome.results) == 1 and outcome.errors == []
        assert outcome.alignments_per_sec > 0

    @pytest.mark.parametrize("workers", (1, 2))
    def test_poisoned_pair_does_not_lose_the_batch(self, workers):
        """One invalid pair yields an error record; the rest align."""
        pairs = _pairs(5)
        pairs.insert(2, ((99,), (0, 1, 2)))  # symbol outside the alphabet
        outcome = _runtime().run(pairs, options=RunOptions(workers=workers))
        assert len(outcome.errors) == 1
        error = outcome.errors[0]
        assert error.index == 2
        assert error.error_type == "SystolicAlignmentError"
        assert outcome.results[2] is None
        assert sum(r is not None for r in outcome.results) == 5
        # The schedule only accounts for the pairs that actually ran.
        assert outcome.schedule.n_jobs == 5

    def test_serial_and_parallel_run_identical(self):
        pairs = _pairs(6)
        serial = _runtime().run(pairs, options=RunOptions(workers=1))
        pooled = _runtime().run(pairs, options=RunOptions(workers=2))
        assert [r.score for r in serial.results] == [
            r.score for r in pooled.results
        ]
        assert [r.cycles.total for r in serial.results] == [
            r.cycles.total for r in pooled.results
        ]
        assert serial.schedule == pooled.schedule

    def test_legacy_workers_kwarg_warns_and_matches_options(self):
        pairs = _pairs(3)
        with pytest.warns(DeprecationWarning, match="RunOptions"):
            legacy = _runtime().run(pairs, workers=1)
        modern = _runtime().run(pairs, options=RunOptions(workers=1))
        assert [r.score for r in legacy.results] == [
            r.score for r in modern.results
        ]

    def test_parallel_run_requires_registered_kernel(self):
        import dataclasses

        runtime = _runtime()
        runtime.spec = dataclasses.replace(runtime.spec, name="custom_copy")
        with pytest.raises(ValueError, match="registered kernel"):
            runtime.run(_pairs(2), options=RunOptions(workers=2))
