"""Fuzzed invariants of every kernel's PE function.

Direct property tests on ``pe_func`` itself (no engine): pointer values
must fit the declared ``tb_ptr_bits``, the declared layer count must be
honoured, and outputs must stay finite under random in-range inputs —
the guarantees the traceback memory and the synthesis models rely on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.spec import PEInput
from repro.kernels import KERNELS, get_kernel

ALL_IDS = sorted(KERNELS)


def random_symbol(alphabet, rng):
    if alphabet.is_struct:
        return tuple(float(rng.uniform(-2, 2)) for _ in alphabet.fields)
    if alphabet.size:
        return int(rng.randint(0, alphabet.size))
    return int(rng.randint(0, 256))


def random_cell(spec, rng):
    span = min(1000.0, abs(spec.sentinel()) / 4)

    def layer():
        return tuple(
            float(rng.uniform(-span, span)) for _ in range(spec.n_layers)
        )

    return PEInput(
        up=layer(), diag=layer(), left=layer(),
        qry=random_symbol(spec.alphabet, rng),
        ref=random_symbol(spec.alphabet, rng),
        params=spec.default_params,
    )


@pytest.mark.parametrize("kid", ALL_IDS)
def test_pointer_fits_declared_width(kid):
    spec = get_kernel(kid)
    rng = np.random.RandomState(kid)
    limit = 1 << spec.tb_ptr_bits
    for _ in range(200):
        _scores, ptr = spec.pe_func(random_cell(spec, rng))
        assert 0 <= ptr < limit, (
            f"{spec.name}: pointer {ptr} needs more than "
            f"{spec.tb_ptr_bits} bits"
        )


@pytest.mark.parametrize("kid", ALL_IDS)
def test_layer_count_honoured(kid):
    spec = get_kernel(kid)
    rng = np.random.RandomState(kid + 100)
    for _ in range(20):
        scores, _ptr = spec.pe_func(random_cell(spec, rng))
        assert len(scores) == spec.n_layers
        assert all(np.isfinite(s) for s in scores)


@pytest.mark.parametrize("kid", ALL_IDS)
def test_quantized_outputs_in_type_range(kid):
    """After quantization every layer fits the declared score type."""
    spec = get_kernel(kid)
    rng = np.random.RandomState(kid + 200)
    t = spec.score_type
    for _ in range(50):
        scores, _ptr = spec.pe_func(random_cell(spec, rng))
        for s in scores:
            q = t.quantize(s)
            assert t.min_value <= q <= t.max_value


@given(
    up=st.floats(-1000, 1000), diag=st.floats(-1000, 1000),
    left=st.floats(-1000, 1000), q=st.integers(0, 3), r=st.integers(0, 3),
)
@settings(max_examples=80, deadline=None)
def test_nw_cell_is_max_of_three_candidates(up, diag, left, q, r):
    """Kernel #1's output equals the max of its three explicit candidates."""
    spec = get_kernel(1)
    p = spec.default_params
    cell = PEInput(
        up=(up,), diag=(diag,), left=(left,), qry=q, ref=r, params=p
    )
    (score,), _ptr = spec.pe_func(cell)
    sub = p.match if q == r else p.mismatch
    assert score == max(diag + sub, up + p.linear_gap, left + p.linear_gap)


@given(
    h=st.floats(-500, 500), i_val=st.floats(-500, 500),
    d_val=st.floats(-500, 500),
)
@settings(max_examples=60, deadline=None)
def test_affine_layers_monotone_in_inputs(h, i_val, d_val):
    """Raising the affine kernel's inputs never lowers its outputs."""
    spec = get_kernel(2)
    p = spec.default_params

    def run(delta):
        cell = PEInput(
            up=(h + delta, i_val, d_val + delta),
            diag=(h + delta, i_val, d_val),
            left=(h + delta, i_val + delta, d_val),
            qry=0, ref=0, params=p,
        )
        return spec.pe_func(cell)[0]

    low = run(0.0)
    high = run(10.0)
    assert all(b >= a for a, b in zip(low, high))
