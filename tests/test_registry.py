"""Tests for the kernel registry (Table 1's index)."""

import pytest

from repro.core.spec import KernelSpec, Objective
from repro.kernels import KERNELS, get_kernel, kernel_ids


class TestRegistry:
    def test_fifteen_kernels(self):
        assert kernel_ids() == list(range(1, 16))

    def test_lookup_by_id_and_name(self):
        assert get_kernel(3) is get_kernel("local_linear")

    def test_unknown_id(self):
        with pytest.raises(KeyError, match="known ids"):
            get_kernel(42)

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="known names"):
            get_kernel("needleman")

    def test_all_are_specs(self):
        assert all(isinstance(s, KernelSpec) for s in KERNELS.values())

    def test_names_unique(self):
        names = [s.name for s in KERNELS.values()]
        assert len(set(names)) == len(names)


class TestTable1Metadata:
    """The registry carries Table 1's taxonomy."""

    def test_layer_counts(self):
        expected = {1: 1, 2: 3, 3: 1, 4: 3, 5: 5, 6: 1, 7: 1, 8: 1, 9: 1,
                    10: 3, 11: 1, 12: 3, 13: 5, 14: 1, 15: 1}
        for kid, layers in expected.items():
            assert KERNELS[kid].n_layers == layers, f"kernel #{kid}"

    def test_objectives(self):
        minimisers = {9, 14}
        for kid, spec in KERNELS.items():
            expected = Objective.MINIMIZE if kid in minimisers else Objective.MAXIMIZE
            assert spec.objective is expected

    def test_traceback_presence(self):
        score_only = {10, 12, 14}
        for kid, spec in KERNELS.items():
            assert spec.has_traceback == (kid not in score_only)

    def test_banded_kernels(self):
        for kid, spec in KERNELS.items():
            assert (spec.banding is not None) == (kid in {11, 12, 13})

    def test_pointer_widths(self):
        # Section 4: #1 needs 2 bits, #2 needs 4; two-piece needs >= 7.
        assert KERNELS[1].tb_ptr_bits == 2
        assert KERNELS[2].tb_ptr_bits == 4
        assert KERNELS[5].tb_ptr_bits == 7
        assert KERNELS[13].tb_ptr_bits == 7

    def test_two_piece_has_five_tb_states(self):
        assert set(KERNELS[5].tb_states) == {
            "MM", "INS", "DEL", "LONG_INS", "LONG_DEL"
        }

    def test_alphabets(self):
        assert KERNELS[15].alphabet.size == 20
        assert KERNELS[9].alphabet.is_struct
        assert KERNELS[8].alphabet.is_struct
        assert KERNELS[1].alphabet.size == 4

    def test_reference_tools_recorded(self):
        assert "Minimap2" in KERNELS[5].reference_tools
        assert "SquiggleFilter" in KERNELS[14].reference_tools
