"""Tests for the process-pool batch execution layer (repro.parallel)."""

import time

import pytest

from repro.parallel import (
    BatchError,
    ParallelExecutor,
    derive_seed,
    run_batch,
)


def _double(item, _seed):
    return item * 2


def _echo_seed(item, seed):
    return (item, seed)


def _poison_13(item, _seed):
    if item == 13:
        raise ValueError("poisoned item")
    return item + 1


def _sleep_for(item, _seed):
    time.sleep(item)
    return item


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(5, 9) == derive_seed(5, 9)

    def test_distinct_across_indices_and_bases(self):
        seeds = {derive_seed(b, i) for b in range(4) for i in range(64)}
        assert len(seeds) == 4 * 64

    def test_not_symmetric(self):
        assert derive_seed(0, 1) != derive_seed(1, 0)

    def test_fits_numpy_seed_after_mod(self):
        assert 0 <= derive_seed(123, 456) % (2 ** 32) < 2 ** 32

    def test_golden_values_pinned(self):
        """Recorded reproducer seeds must stay valid across releases."""
        assert derive_seed(0, 0) == 7689419447139100721
        assert derive_seed(0, 1) == 8724540124617128742
        assert derive_seed(42, 7) == 7041254291183900872


class TestSerialPath:
    def test_maps_in_order(self):
        result = run_batch(_double, [1, 2, 3], workers=1)
        assert result.ok
        assert result.values() == [2, 4, 6]

    def test_empty_batch(self):
        result = run_batch(_double, [], workers=1)
        assert result.ok and len(result) == 0 and result.values() == []

    def test_seeds_passed_per_item(self):
        result = run_batch(_echo_seed, ["a", "b"], workers=1, seed=3)
        assert result.values() == [
            ("a", derive_seed(3, 0)), ("b", derive_seed(3, 1))
        ]


class TestPooledPath:
    def test_matches_serial_bit_for_bit(self):
        items = list(range(17))
        serial = run_batch(_double, items, workers=1, seed=9)
        pooled = run_batch(_double, items, workers=3, seed=9)
        assert serial.outcomes == pooled.outcomes

    def test_order_preserved_with_tiny_chunks(self):
        result = run_batch(_double, list(range(11)), workers=2, chunk_size=1)
        assert result.values() == [2 * k for k in range(11)]

    def test_chunk_count_amortizes_dispatch(self):
        executor = ParallelExecutor(workers=2)
        entries = [(i, 0, i) for i in range(100)]
        chunks = executor._chunks(entries)
        assert 2 <= len(chunks) <= 100
        assert sum(len(c) for c in chunks) == 100


class TestFailureIsolation:
    @pytest.mark.parametrize("workers", (1, 2))
    def test_poisoned_item_does_not_kill_batch(self, workers):
        items = [10, 13, 20, 30]
        result = run_batch(_poison_13, items, workers=workers)
        assert not result.ok
        assert len(result.errors) == 1
        error = result.errors[0]
        assert error.index == 1
        assert error.error_type == "ValueError"
        assert "poisoned" in error.message
        assert result.values(strict=False) == [11, None, 21, 31]

    def test_strict_values_raise_batch_error(self):
        result = run_batch(_poison_13, [13], workers=1)
        with pytest.raises(BatchError, match="poisoned"):
            result.values()

    def test_serial_and_pooled_errors_compare_equal(self):
        """Tracebacks differ between processes; structured records don't."""
        serial = run_batch(_poison_13, [13, 1], workers=1)
        pooled = run_batch(_poison_13, [13, 1], workers=2)
        assert serial.outcomes == pooled.outcomes


class TestTimeout:
    def test_overrunning_item_becomes_timeout_error(self):
        result = run_batch(
            _sleep_for, [0.0, 0.5], workers=1, timeout=0.15
        )
        assert result.values(strict=False)[0] == 0.0
        assert len(result.errors) == 1
        assert result.errors[0].error_type == "TimeoutError"
        assert result.errors[0].index == 1

    def test_pooled_timeout_isolated_per_item(self):
        result = run_batch(
            _sleep_for, [0.5, 0.0], workers=2, chunk_size=1, timeout=0.15
        )
        assert result.errors[0].index == 0
        assert result.values(strict=False)[1] == 0.0

    def test_non_main_thread_falls_back_to_no_timeout(self):
        """SIGALRM cannot be armed off the main thread: the in-process
        path must run the item unbounded instead of raising from
        ``signal.signal`` (the service's dispatch threads rely on it)."""
        import threading

        captured = {}

        def run_on_thread():
            try:
                captured["result"] = run_batch(
                    _sleep_for, [0.05], workers=1, timeout=0.01
                )
            except Exception as exc:  # pragma: no cover - the old failure
                captured["exception"] = exc

        thread = threading.Thread(target=run_on_thread)
        thread.start()
        thread.join(timeout=10.0)
        assert "exception" not in captured, captured.get("exception")
        result = captured["result"]
        # The item overran the nominal timeout but completed: the
        # fallback is documented as no-timeout, not best-effort.
        assert result.ok
        assert result.values() == [0.05]

    def test_main_thread_timeout_still_armed(self):
        """The guard must not disable timeouts on the main thread."""
        result = run_batch(_sleep_for, [0.3], workers=1, timeout=0.05)
        assert not result.ok
        assert result.errors[0].error_type == "TimeoutError"


class TestValidation:
    def test_bad_workers(self):
        with pytest.raises(ValueError, match="workers"):
            ParallelExecutor(workers=0)

    def test_bad_chunk_size(self):
        with pytest.raises(ValueError, match="chunk_size"):
            ParallelExecutor(chunk_size=0)

    def test_bad_timeout(self):
        with pytest.raises(ValueError, match="timeout"):
            ParallelExecutor(timeout=0)

    def test_default_workers_positive(self):
        assert ParallelExecutor().workers >= 1


class TestBatchErrorTraceback:
    def test_worker_traceback_text_survives_reraise(self):
        """The BatchError message must carry the worker-side traceback —
        the original raise site, not just the exception repr — so a
        failure inside a pooled work function stays debuggable."""
        result = run_batch(_poison_13, [1, 13, 2], workers=2, chunk_size=1)
        with pytest.raises(BatchError) as excinfo:
            result.values()
        message = str(excinfo.value)
        assert "poisoned item" in message
        assert "worker traceback of item 1" in message
        assert "Traceback (most recent call last)" in message
        assert "_poison_13" in message  # the actual raising frame

    def test_serial_path_traceback_preserved_too(self):
        result = run_batch(_poison_13, [13], workers=1)
        with pytest.raises(BatchError, match="in _poison_13"):
            result.values()

    def test_no_traceback_degrades_gracefully(self):
        from repro.parallel import WorkError

        error = WorkError(0, "ValueError", "no tb captured")
        message = str(BatchError([error]))
        assert "worker traceback" not in message
        assert "1 work item(s) failed" in message
