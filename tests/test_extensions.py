"""Tests for the extension kernels (beyond Table 1)."""

import numpy as np
import pytest

from repro.kernels.extensions import (
    EXTENSION_KERNELS,
    GLOBAL_LINEAR_N,
    N_CODE,
    SAKOE_CHIBA_BAND,
    SAKOE_CHIBA_DTW,
    SEMIGLOBAL_AFFINE,
)
from repro.reference import oracle_align
from repro.reference.classic import gotoh_global, nw_linear
from repro.reference.rescore import rescore_affine
from repro.systolic import align
from tests.conftest import mutated_copy, random_dna


class TestEngineEquivalence:
    @pytest.mark.parametrize("spec", EXTENSION_KERNELS, ids=lambda s: s.name)
    def test_matches_oracle(self, spec):
        if spec is SAKOE_CHIBA_DTW:
            from repro.data.signals import random_complex_signal, warp_signal

            r = random_complex_signal(24, seed=1)
            q = warp_signal(r, seed=2)[:24]
        elif spec.alphabet.name == "profile_protein":
            from repro.data.protein import random_protein
            from tests.test_fastq_protein_profile import one_hot_protein_profile

            q = one_hot_protein_profile(random_protein(8, seed=3))
            r = one_hot_protein_profile(random_protein(8, seed=4))
        else:
            r = random_dna(30, seed=3)
            q = mutated_copy(r, seed=4)[:30]
            if spec is GLOBAL_LINEAR_N:
                q = q[:len(r)] + r[len(q):]  # keep |Q-R| small is irrelevant here
        ours = align(spec, q, r, n_pe=4)
        ref = oracle_align(spec, q, r)
        assert np.isclose(ours.score, ref.score)
        if spec.has_traceback:
            assert ours.alignment.moves == ref.alignment.moves


class TestDna5:
    def test_without_ns_matches_kernel1(self):
        """On pure ACGT input, DNA5 scoring equals Needleman-Wunsch."""
        ref = random_dna(24, seed=5)
        qry = mutated_copy(ref, seed=6)
        params = GLOBAL_LINEAR_N.default_params
        ours = align(GLOBAL_LINEAR_N, qry, ref, n_pe=4).score
        assert ours == nw_linear(qry, ref, match=2, mismatch=-2,
                                 gap=params.linear_gap)

    def test_n_scores_neutrally(self):
        seq = random_dna(16, seed=7)
        masked = seq[:8] + (N_CODE,) + seq[9:]
        clean_score = align(GLOBAL_LINEAR_N, seq, seq, n_pe=4).score
        masked_score = align(GLOBAL_LINEAR_N, masked, seq, n_pe=4).score
        # one N replaces a +2 match by a 0 — never as bad as a mismatch
        assert masked_score == clean_score - 2

    def test_all_n_query_scores_zero_matches(self):
        seq = random_dna(10, seed=8)
        all_n = (N_CODE,) * 10
        assert align(GLOBAL_LINEAR_N, all_n, seq, n_pe=4).score == 0


class TestSemiglobalAffine:
    def test_contained_read_full_match(self):
        read = random_dna(12, seed=9)
        reference = random_dna(10, seed=10) + read + random_dna(10, seed=11)
        result = align(SEMIGLOBAL_AFFINE, read, reference, n_pe=4)
        assert result.cigar == "12M"
        assert result.score == 12 * SEMIGLOBAL_AFFINE.default_params.match

    def test_affine_gap_consolidation(self):
        reference = random_dna(30, seed=12)
        read = reference[5:14] + reference[18:27]  # internal 4-base deletion
        result = align(SEMIGLOBAL_AFFINE, read, reference, n_pe=4)
        assert "4I" in result.cigar

    def test_path_rescores_to_optimum(self):
        reference = random_dna(40, seed=13)
        read = mutated_copy(reference[8:32], seed=14)
        result = align(SEMIGLOBAL_AFFINE, read, reference, n_pe=4)
        p = SEMIGLOBAL_AFFINE.default_params
        rescored = rescore_affine(
            result.alignment, read, reference,
            p.match, p.mismatch, p.gap_open, p.gap_extend,
        )
        assert rescored == result.score

    def test_no_worse_than_global_affine(self):
        """Free reference ends can only help relative to global."""
        reference = random_dna(30, seed=15)
        read = mutated_copy(reference[4:26], seed=16)
        semi = align(SEMIGLOBAL_AFFINE, read, reference, n_pe=4).score
        glob = gotoh_global(read, reference)
        assert semi >= glob


class TestSakoeChiba:
    def test_derived_from_dtw(self):
        assert SAKOE_CHIBA_DTW.banding == SAKOE_CHIBA_BAND
        assert SAKOE_CHIBA_DTW.objective.value == "min"

    def test_band_never_beats_unbanded(self):
        from repro.data.signals import random_complex_signal, warp_signal
        from repro.kernels import get_kernel

        ref = random_complex_signal(32, seed=17)
        qry = warp_signal(ref, seed=18)[:32]
        banded = align(SAKOE_CHIBA_DTW, qry, ref, n_pe=4).score
        free = align(get_kernel(9), qry, ref, n_pe=4).score
        assert banded >= free  # banding can only restrict the warping path

    def test_band_cuts_cycles(self):
        from repro.data.signals import random_complex_signal
        from repro.kernels import get_kernel

        sig = random_complex_signal(64, seed=19)
        banded = align(SAKOE_CHIBA_DTW, sig, sig, n_pe=8).cycles
        free = align(get_kernel(9), sig, sig, n_pe=8).cycles
        assert banded.compute_cycles < free.compute_cycles
