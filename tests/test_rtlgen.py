"""Tests for the structural Verilog skeleton generator (Section 7.2)."""

import pytest

from repro.kernels import KERNELS, get_kernel
from repro.synth import LaunchConfig
from repro.synth.rtlgen import generate_rtl_skeleton


class TestSkeletonStructure:
    def test_contains_pe_block_kernel_hierarchy(self):
        text = generate_rtl_skeleton(get_kernel(1))
        assert "module global_linear_pe" in text
        assert "module global_linear_block" in text
        assert "module global_linear_kernel" in text

    def test_systolic_chain_generate_loop(self):
        text = generate_rtl_skeleton(get_kernel(1), LaunchConfig(n_pe=16))
        assert "parameter N_PE = 16" in text
        assert "pe_chain" in text
        # PE 0 reads the preserved-row buffer; others read the bus
        assert "p == 0 ? row_buffer_rd : bus[p-1][0]" in text

    def test_tb_banks_only_for_traceback_kernels(self):
        with_tb = generate_rtl_skeleton(get_kernel(2))
        without = generate_rtl_skeleton(get_kernel(14))
        assert "tb_banks" in with_tb
        assert "tb_banks" not in without

    def test_tb_bank_geometry_matches_memory_model(self):
        from repro.systolic.tb_memory import TracebackMemory

        config = LaunchConfig(n_pe=8, max_query_len=64, max_ref_len=32)
        mem = TracebackMemory(8, 64, 32, get_kernel(1).tb_ptr_bits)
        text = generate_rtl_skeleton(get_kernel(1), config)
        assert f"bank [0:{mem.depth - 1}]" in text

    def test_score_width_propagates(self):
        text = generate_rtl_skeleton(get_kernel(9))  # 32-bit fixed point
        assert "parameter SCORE_W = 32" in text

    def test_layer_ports_emitted(self):
        text = generate_rtl_skeleton(get_kernel(5))  # 5 layers
        for layer in range(5):
            assert f"up_l{layer}" in text

    def test_nb_generate_loop(self):
        text = generate_rtl_skeleton(get_kernel(1), LaunchConfig(n_b=4))
        assert "blk < 4" in text

    def test_datapath_summary_from_trace(self):
        text = generate_rtl_skeleton(get_kernel(8))
        assert "multipliers   : 30" in text

    @pytest.mark.parametrize("kid", sorted(KERNELS))
    def test_all_kernels_generate(self, kid):
        text = generate_rtl_skeleton(get_kernel(kid))
        assert text.count("endmodule") == 3
