"""Consistent-hash ring properties the serving tier depends on.

Three guarantees are pinned: routing is a pure deterministic function
of (membership, key); the arc shares every shard owns stay close to
the fair split (balance); and membership changes move only the keys
they must (minimal remapping) — the property that keeps each shard's
memory-tier cache hot across join/leave events elsewhere in the ring.
"""

import hashlib

import pytest

from repro.shard.ring import (
    DEFAULT_VNODES,
    PREFIX_HEX_CHARS,
    HashRing,
    arc_share,
    key_point,
    node_point,
)


def fingerprints(n, salt=""):
    """Deterministic SHA-256 hex keys, shaped like cache fingerprints."""
    return [
        hashlib.sha256(f"{salt}pair-{i}".encode()).hexdigest()
        for i in range(n)
    ]


class TestKeyPoint:
    """The key → 64-bit position mapping."""

    def test_hex_prefix_is_the_position(self):
        key = "deadbeefcafef00d" + "0" * 48
        assert key_point(key) == int("deadbeefcafef00d", 16)

    def test_prefix_truncation(self):
        full = fingerprints(1)[0]
        assert key_point(full) == key_point(full[:PREFIX_HEX_CHARS])

    def test_short_hex_keys_shift_up(self):
        # "ab" positions as "ab" + zero padding, not as the integer 0xab.
        assert key_point("ab") == key_point("ab" + "0" * 14)
        assert key_point("ab") == 0xAB << (4 * 14)

    def test_non_hex_falls_back_to_hashing(self):
        point = key_point("not hex at all!")
        assert 0 <= point < (1 << 64)
        assert point == key_point("not hex at all!")

    def test_node_points_differ_by_replica(self):
        points = {node_point("shard-00", k) for k in range(64)}
        assert len(points) == 64


class TestMembership:
    """Ring membership bookkeeping."""

    def test_duplicate_add_rejected(self):
        ring = HashRing(("a",))
        with pytest.raises(ValueError):
            ring.add("a")

    def test_remove_unknown_rejected(self):
        with pytest.raises(KeyError):
            HashRing(("a",)).remove("b")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            HashRing().add("")

    def test_vnode_floor(self):
        with pytest.raises(ValueError):
            HashRing(vnodes=0)

    def test_len_contains_nodes(self):
        ring = HashRing(("b", "a"))
        assert len(ring) == 2
        assert "a" in ring and "c" not in ring
        assert ring.nodes == ["a", "b"]

    def test_describe_counts_points(self):
        ring = HashRing(("a", "b"), vnodes=32)
        assert ring.describe() == {
            "nodes": ["a", "b"], "vnodes": 32, "points": 64,
        }

    def test_empty_ring_raises_lookup_error(self):
        with pytest.raises(LookupError):
            HashRing().route("ab" * 32)


class TestDeterminism:
    """Same membership + same key → same shard, everywhere, always."""

    def test_route_is_stable_across_instances(self):
        keys = fingerprints(200)
        ring_a = HashRing(("shard-00", "shard-01", "shard-02"))
        ring_b = HashRing(("shard-02", "shard-00", "shard-01"))
        assert [ring_a.route(k) for k in keys] == [
            ring_b.route(k) for k in keys
        ]

    def test_route_survives_unrelated_churn(self):
        # Adding then removing an unrelated shard must restore the
        # exact original routing table.
        keys = fingerprints(300)
        ring = HashRing(("shard-00", "shard-01"))
        before = [ring.route(k) for k in keys]
        ring.add("shard-02")
        ring.remove("shard-02")
        assert [ring.route(k) for k in keys] == before

    def test_single_node_takes_everything(self):
        ring = HashRing(("only",))
        assert set(ring.load_split(fingerprints(64)).values()) == {64}


class TestBalance:
    """Arc shares concentrate near the fair split."""

    @pytest.mark.parametrize("n_shards", [2, 4, 8])
    def test_arc_share_within_factor_of_fair(self, n_shards):
        ring = HashRing(
            tuple(f"shard-{i:02d}" for i in range(n_shards)),
            vnodes=DEFAULT_VNODES,
        )
        shares = arc_share(ring)
        fair = 1.0 / n_shards
        assert abs(sum(shares.values()) - 1.0) < 1e-9
        for name, share in shares.items():
            # With 128 vnodes the arc share stays well within 2x of
            # fair — loose enough to be hash-stable, tight enough to
            # catch a broken point distribution.
            assert fair / 2 < share < fair * 2, (name, share)

    def test_sampled_split_matches_arc_share(self):
        ring = HashRing(("shard-00", "shard-01", "shard-02"))
        keys = fingerprints(3000)
        split = ring.load_split(keys)
        shares = arc_share(ring)
        assert sum(split.values()) == len(keys)
        for name in ring.nodes:
            observed = split[name] / len(keys)
            assert abs(observed - shares[name]) < 0.05, name


class TestMinimalRemap:
    """Joins claim keys only for themselves; leaves spill only their own."""

    def test_join_moves_keys_only_to_the_joiner(self):
        keys = fingerprints(2000)
        ring = HashRing(("shard-00", "shard-01", "shard-02"))
        before = {k: ring.route(k) for k in keys}
        ring.add("shard-03")
        moved = 0
        for key in keys:
            after = ring.route(key)
            if after != before[key]:
                assert after == "shard-03", (
                    "a key moved between two surviving shards on join"
                )
                moved += 1
        # The joiner should take roughly its fair share (1/4) and
        # certainly not more than the 1/2 a naive mod-N remap would.
        assert 0 < moved / len(keys) < 0.5

    def test_leave_moves_only_the_leavers_keys(self):
        keys = fingerprints(2000)
        ring = HashRing(("shard-00", "shard-01", "shard-02", "shard-03"))
        before = {k: ring.route(k) for k in keys}
        ring.remove("shard-02")
        for key in keys:
            after = ring.route(key)
            if before[key] == "shard-02":
                assert after != "shard-02"
            else:
                assert after == before[key], (
                    "a surviving shard's key moved on an unrelated leave"
                )

    def test_rejoin_restores_ownership(self):
        # A shard that leaves and returns owns exactly its old range —
        # the warm-start property of the per-shard disk journals.
        keys = fingerprints(1000)
        ring = HashRing(("shard-00", "shard-01", "shard-02"))
        before = {k: ring.route(k) for k in keys}
        ring.remove("shard-01")
        ring.add("shard-01")
        assert {k: ring.route(k) for k in keys} == before
