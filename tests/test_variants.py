"""Tests for the spec transformers (banded / score-only / reparameterised)."""

import pytest

from repro.kernels import get_kernel
from repro.kernels.variants import make_banded, make_score_only, with_params
from repro.reference import oracle_align
from repro.systolic import align
from tests.conftest import mutated_copy, random_dna


class TestMakeBanded:
    def test_derived_banded_matches_shipped_kernel(self):
        """make_banded(#1, 32) must behave exactly like shipped kernel #11."""
        derived = make_banded(get_kernel(1), 32)
        shipped = get_kernel(11)
        n = 40
        q, r = random_dna(n, 1), random_dna(n, 2)
        a = align(derived, q, r, n_pe=4)
        b = align(shipped, q, r, n_pe=4)
        assert a.score == b.score
        assert a.cigar == b.cigar
        assert a.cycles.compute_cycles == b.cycles.compute_cycles

    def test_systolic_matches_oracle_on_derived(self):
        derived = make_banded(get_kernel(4), 8)
        q, r = random_dna(30, 3), random_dna(30, 4)
        a = align(derived, q, r, n_pe=4)
        b = oracle_align(derived, q, r)
        assert a.score == b.score and a.cigar == b.cigar

    def test_name_and_metadata(self):
        derived = make_banded(get_kernel(1), 16)
        assert derived.name == "global_linear_banded16"
        assert derived.banding == 16
        assert "Banding" in derived.modifications

    def test_already_banded_rejected(self):
        with pytest.raises(ValueError, match="already banded"):
            make_banded(get_kernel(11), 8)

    def test_invalid_band(self):
        with pytest.raises(ValueError):
            make_banded(get_kernel(1), 0)


class TestMakeScoreOnly:
    def test_score_preserved(self):
        base = get_kernel(4)
        derived = make_score_only(base)
        ref = random_dna(30, 5)
        qry = mutated_copy(ref, 6)
        a = align(derived, qry, ref, n_pe=4)
        b = align(base, qry, ref, n_pe=4)
        assert a.score == b.score
        assert a.alignment is None and b.alignment is not None

    def test_traceback_cycles_eliminated(self):
        base = get_kernel(2)
        derived = make_score_only(base)
        ref = random_dna(30, 7)
        qry = mutated_copy(ref, 8)
        assert align(derived, qry, ref, n_pe=4).cycles.traceback_cycles == 0

    def test_bram_savings(self):
        from repro.synth.resources import estimate_resources

        base = get_kernel(2)
        derived = make_score_only(base)
        assert estimate_resources(derived, 32).bram36 < \
            estimate_resources(base, 32).bram36

    def test_already_score_only_rejected(self):
        with pytest.raises(ValueError, match="already score-only"):
            make_score_only(get_kernel(14))


class TestWithParams:
    def test_rebinding_changes_scores(self):
        from repro.kernels.global_linear import ScoringParams

        base = get_kernel(1)
        harsher = with_params(base, ScoringParams(match=1, mismatch=-9,
                                                  linear_gap=-9))
        ref = random_dna(20, 9)
        qry = mutated_copy(ref, 10)
        assert align(harsher, qry, ref, n_pe=4).score < \
            align(base, qry, ref, n_pe=4).score

    def test_wrong_params_type_rejected(self):
        from repro.kernels.global_affine import ScoringParams as AffineParams

        with pytest.raises(TypeError):
            with_params(get_kernel(1), AffineParams())

    def test_composition(self):
        """Transformers compose: banded + score-only of a user kernel."""
        derived = make_score_only(make_banded(get_kernel(2), 16))
        q, r = random_dna(24, 11), random_dna(24, 12)
        a = align(derived, q, r, n_pe=4)
        b = oracle_align(derived, q, r)
        assert a.score == b.score
        assert derived.banding == 16 and not derived.has_traceback
