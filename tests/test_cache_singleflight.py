"""Single-flight dedup: concurrent identical work runs exactly once.

Exercises both API levels of :mod:`repro.cache.singleflight`: the
closure form (``do``) under an 8-thread stampede, and the split form
(``begin``/``finish``/``fail``/``wait``) the batch runtime uses.
"""

import threading
import time

import pytest

from repro.cache.singleflight import SingleFlight


def _spin_until(predicate, deadline_s: float = 30.0):
    """Busy-wait for ``predicate()`` with a hard deadline (test safety)."""
    deadline = time.monotonic() + deadline_s
    while not predicate():
        if time.monotonic() > deadline:  # pragma: no cover
            raise AssertionError("condition not reached before deadline")
        time.sleep(0.001)


class TestClosureAPI:
    def test_eight_thread_stampede_computes_once(self):
        """8 threads hitting one key: one leader, 7 coalesced followers,
        all seeing the same value."""
        flights = SingleFlight()
        gate = threading.Barrier(8)
        release = threading.Event()
        calls = []
        results = []
        lock = threading.Lock()

        def compute():
            calls.append(1)
            # Hold the flight open until every thread has joined it, so
            # the test is deterministic rather than racy.
            release.wait(timeout=30.0)
            return "value"

        def worker():
            gate.wait(timeout=30.0)
            value, coalesced = flights.do("key", compute)
            with lock:
                results.append((value, coalesced))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        # Wait until the 7 followers are parked on the flight.
        _spin_until(lambda: flights.stats().coalesced >= 7)
        release.set()
        for thread in threads:
            thread.join(timeout=30.0)
        assert len(calls) == 1
        assert [value for value, _ in results] == ["value"] * 8
        assert sum(1 for _, coalesced in results if coalesced) == 7
        stats = flights.stats()
        assert stats.flights == 1
        assert stats.coalesced == 7
        assert flights.in_flight() == 0

    def test_distinct_keys_do_not_coalesce(self):
        flights = SingleFlight()
        assert flights.do("a", lambda: 1) == (1, False)
        assert flights.do("b", lambda: 2) == (2, False)
        assert flights.stats().coalesced == 0

    def test_sequential_calls_rerun(self):
        """Results are not retained: a settled key starts a new flight."""
        flights = SingleFlight()
        counter = []
        for _ in range(3):
            flights.do("k", lambda: counter.append(1))
        assert len(counter) == 3
        assert flights.stats().flights == 3

    def test_leader_exception_reaches_all_followers(self):
        flights = SingleFlight()
        gate = threading.Barrier(4)
        release = threading.Event()
        failures = []
        lock = threading.Lock()

        def explode():
            release.wait(timeout=30.0)
            raise ValueError("engine fault")

        def worker():
            gate.wait(timeout=30.0)
            try:
                flights.do("key", explode)
            except ValueError as exc:
                with lock:
                    failures.append(str(exc))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        _spin_until(lambda: flights.stats().coalesced >= 3)
        release.set()
        for thread in threads:
            thread.join(timeout=30.0)
        assert failures == ["engine fault"] * 4
        assert flights.in_flight() == 0


class TestSplitAPI:
    def test_one_thread_leads_many_flights(self):
        """The batch runtime's shape: lead N keys, settle them in bulk."""
        flights = SingleFlight()
        led = {}
        for key in ("a", "b", "c"):
            flight, leader = flights.begin(key)
            assert leader
            led[key] = flight
        assert flights.in_flight() == 3
        for key, flight in led.items():
            flights.finish(flight, key.upper())
        assert flights.in_flight() == 0
        for key, flight in led.items():
            assert flights.wait(flight) == key.upper()

    def test_follower_joins_open_flight(self):
        flights = SingleFlight()
        flight, leader = flights.begin("k")
        assert leader
        joined, second_leader = flights.begin("k")
        assert joined is flight
        assert not second_leader
        assert flight.followers == 1
        flights.finish(flight, 42)
        assert flights.wait(joined) == 42

    def test_fail_re_raises_in_wait(self):
        flights = SingleFlight()
        flight, _ = flights.begin("k")
        flights.fail(flight, RuntimeError("boom"))
        with pytest.raises(RuntimeError, match="boom"):
            flights.wait(flight)

    def test_wait_timeout_on_unsettled_flight(self):
        flights = SingleFlight()
        flight, _ = flights.begin("k")
        with pytest.raises(TimeoutError, match="unsettled"):
            flights.wait(flight, timeout=0.01)
        flights.finish(flight, None)  # settle so nothing leaks
