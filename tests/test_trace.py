"""Tests for the datapath tracer."""

import pytest

from repro.core.ops import eq, lookup, select, vabs, vmax, vmin
from repro.core.trace import DatapathGraph, OpKind, TracedTable, TracedValue


def make(width=16):
    g = DatapathGraph()
    return g, TracedValue(g, width)


class TestTracedArithmetic:
    def test_add_records_adder(self):
        g, v = make()
        _ = v + 3
        assert g.count(OpKind.ADD) == 1

    def test_sub_records_adder(self):
        g, v = make()
        _ = v - 3
        assert g.count(OpKind.ADD) == 1

    def test_radd_from_plain(self):
        g, v = make()
        _ = 3 + v
        assert g.count(OpKind.ADD) == 1

    def test_mul_records_operand_widths(self):
        g = DatapathGraph()
        a = TracedValue(g, 16)
        b = TracedValue(g, 32)
        _ = a * b
        assert g.count(OpKind.MUL) == 1
        assert g.multiplier_instances() == ((16, 32),)

    def test_neg(self):
        g, v = make()
        _ = -v
        assert g.count(OpKind.ADD) == 1

    def test_comparison_produces_one_bit(self):
        g, v = make()
        cond = v < 3
        assert isinstance(cond, TracedValue)
        assert cond.width == 1
        assert g.count(OpKind.CMP) == 1

    def test_width_propagates_max(self):
        g = DatapathGraph()
        a = TracedValue(g, 16)
        b = TracedValue(g, 24)
        assert (a + b).width == 24

    def test_bool_coercion_raises(self):
        _, v = make()
        with pytest.raises(TypeError):
            if v:  # noqa: SIM108 - exercising the guard
                pass

    def test_depth_accumulates(self):
        g, v = make()
        out = (v + 1) + 2
        assert out.depth > (v + 1).depth or g.critical_depth >= 2.0


class TestDualModeOps:
    def test_select_plain(self):
        assert select(True, 1, 2) == 1
        assert select(False, 1, 2) == 2

    def test_select_traced_records_mux(self):
        g, v = make()
        out = select(v < 0, v, 0)
        assert isinstance(out, TracedValue)
        assert g.count(OpKind.MUX) == 1

    def test_vmax_plain(self):
        assert vmax(1, 5, 3) == 5

    def test_vmin_plain(self):
        assert vmin(1, 5, 3) == 1

    def test_vmax_traced_records_cmp_mux_tree(self):
        g, v = make()
        _ = vmax(v, v + 1, v + 2)
        assert g.count(OpKind.CMP) == 2
        assert g.count(OpKind.MUX) == 2

    def test_vmax_single_value(self):
        assert vmax(7) == 7

    def test_vmax_empty_rejected(self):
        with pytest.raises(ValueError):
            vmax()

    def test_vabs_plain(self):
        assert vabs(-4) == 4

    def test_vabs_traced(self):
        g, v = make()
        _ = vabs(v)
        assert g.count(OpKind.ABS) == 1

    def test_eq_plain(self):
        assert eq(2, 2) is True
        assert eq(2, 3) is False

    def test_eq_traced(self):
        g, v = make()
        out = eq(v, 3)
        assert out.width == 1
        assert g.count(OpKind.CMP) == 1


class TestTracedTable:
    def test_constant_index_records_nothing(self):
        g = DatapathGraph()
        t = TracedTable(g, (5, 5), 16)
        out = lookup(t, 1, 2)
        assert isinstance(out, TracedValue)
        assert g.count(OpKind.ROM) == 0

    def test_traced_index_records_rom(self):
        g = DatapathGraph()
        t = TracedTable(g, (5, 5), 16)
        idx = TracedValue(g, 3)
        out = lookup(t, idx, idx)
        assert isinstance(out, TracedValue)
        assert g.count(OpKind.ROM) == 2

    def test_plain_lookup_unaffected(self):
        table = [[1, 2], [3, 4]]
        assert lookup(table, 1, 0) == 3

    def test_len(self):
        g = DatapathGraph()
        assert len(TracedTable(g, (7, 2), 8)) == 7

    def test_empty_shape_rejected(self):
        with pytest.raises(ValueError):
            TracedTable(DatapathGraph(), (), 8)


class TestGraphQueries:
    def test_width_weighted_count(self):
        g = DatapathGraph()
        a = TracedValue(g, 16)
        _ = a + a
        _ = a + a
        assert g.width_weighted_count(OpKind.ADD) == 32

    def test_critical_depth_monotone(self):
        g = DatapathGraph()
        v = TracedValue(g, 16)
        before = g.critical_depth
        _ = v + 1
        assert g.critical_depth > before
