"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.alphabet import encode_dna


def random_dna(length: int, seed: int):
    """Deterministic random DNA as 2-bit codes."""
    rng = np.random.RandomState(seed)
    return tuple(int(b) for b in rng.randint(0, 4, size=length))


def mutated_copy(sequence, seed: int, error_rate: float = 0.2):
    """A noisy copy (substitutions/indels) of a DNA sequence."""
    rng = np.random.RandomState(seed)
    out = []
    for base in sequence:
        roll = rng.rand()
        if roll < error_rate / 3:
            continue  # deletion
        if roll < 2 * error_rate / 3:
            out.append(int(rng.randint(0, 4)))  # insertion
        if roll < error_rate:
            out.append(int((base + 1 + rng.randint(0, 3)) % 4))
        else:
            out.append(int(base))
    if not out:
        out.append(0)
    return tuple(out)


@pytest.fixture
def dna_pair():
    """A fixed, related (query, reference) pair of moderate size."""
    reference = random_dna(48, seed=11)
    query = mutated_copy(reference, seed=12)
    return query, reference


@pytest.fixture
def short_dna_pair():
    """A tiny handmade pair with a known best alignment."""
    return encode_dna("ACGTACGGTACGT"), encode_dna("ACGTTACGGTCGT")
