"""Semantic behaviour of each kernel on constructed scenarios.

Beyond matching oracles, each kernel must *behave like the algorithm it
claims to be*: Smith-Waterman finds a planted motif, overlap alignment
detects a suffix-prefix join, sDTW locates a planted sub-signal, the
two-piece model charges long gaps by the cheap piece, and so on.
"""

import numpy as np
import pytest

from repro.core.alphabet import encode_dna, encode_protein
from repro.core.result import Move
from repro.kernels import get_kernel
from repro.systolic import align
from tests.conftest import random_dna


class TestGlobalLinear:
    def test_identical_sequences_all_match(self):
        spec = get_kernel(1)
        seq = encode_dna("ACGTACGTAC")
        result = align(spec, seq, seq, n_pe=4)
        assert result.cigar == f"{len(seq)}M"
        assert result.score == len(seq) * spec.default_params.match

    def test_single_substitution_cost(self):
        spec = get_kernel(1)
        a = encode_dna("ACGTACGTAC")
        b = encode_dna("ACGTTCGTAC")
        result = align(spec, a, b, n_pe=4)
        p = spec.default_params
        assert result.score == (len(a) - 1) * p.match + p.mismatch

    def test_single_deletion_cost(self):
        spec = get_kernel(1)
        a = encode_dna("ACGTACGTA")
        b = encode_dna("ACGTCGTA")  # one base deleted
        result = align(spec, a, b, n_pe=4)
        p = spec.default_params
        assert result.score == len(b) * p.match + p.linear_gap
        assert "D" in result.cigar


class TestLocalLinear:
    def test_finds_planted_motif(self):
        spec = get_kernel(3)
        motif = encode_dna("GATTACAGATTACA")
        query = random_dna(10, seed=1) + motif + random_dna(10, seed=2)
        reference = random_dna(12, seed=3) + motif + random_dna(8, seed=4)
        result = align(spec, query, reference, n_pe=4)
        assert result.score >= len(motif) * spec.default_params.match
        # the recovered span covers the planted motif in the query
        assert result.end[0] <= 10 + 2
        assert result.start[0] >= 10 + len(motif) - 2

    def test_unrelated_sequences_score_small(self):
        spec = get_kernel(3)
        result = align(spec, (0,) * 20, (1,) * 20, n_pe=4)
        assert result.score == 0
        assert result.cigar == ""

    def test_score_never_negative(self):
        spec = get_kernel(3)
        result = align(spec, random_dna(15, 5), random_dna(15, 6), n_pe=4)
        assert result.score >= 0


class TestAffine:
    def test_one_long_gap_beats_scattered_gaps(self):
        """Affine scoring prefers consolidating gaps; the recovered path
        for a read with one 4-base deletion must contain one 4D run."""
        spec = get_kernel(2)
        ref = encode_dna("ACGTACGGATCGTACGTTGCA")
        qry = ref[:8] + ref[12:]  # clean 4-base deletion
        result = align(spec, qry, ref, n_pe=4)
        assert "4I" in result.cigar

    def test_affine_scores_below_linear_for_gapless(self):
        spec = get_kernel(2)
        seq = encode_dna("ACGTACGT")
        result = align(spec, seq, seq, n_pe=4)
        assert result.score == len(seq) * spec.default_params.match


class TestTwoPiece:
    def test_long_gap_charged_by_cheap_piece(self):
        spec = get_kernel(5)
        p = spec.default_params
        ref = tuple(random_dna(60, seed=9))
        qry = ref[:15] + ref[55:]  # 40-base deletion
        result = align(spec, qry, ref, n_pe=8)
        gap_len = 40
        expected = 20 * p.match + max(
            p.gap_open1 + p.gap_extend1 * gap_len,
            p.gap_open2 + p.gap_extend2 * gap_len,
        )
        assert result.score == expected
        # the long piece is the cheaper one at length 40
        assert p.gap_open2 + p.gap_extend2 * gap_len > \
            p.gap_open1 + p.gap_extend1 * gap_len

    def test_short_gap_charged_by_short_piece(self):
        spec = get_kernel(5)
        p = spec.default_params
        ref = tuple(random_dna(30, seed=10))
        qry = ref[:14] + ref[16:]  # 2-base deletion
        result = align(spec, qry, ref, n_pe=4)
        expected = 28 * p.match + p.gap_open1 + p.gap_extend1 * 2
        assert result.score == expected


class TestOverlap:
    def test_suffix_prefix_overlap(self):
        spec = get_kernel(6)
        core = encode_dna("GATTACAGATTACAGATTACA")
        query = random_dna(12, seed=11) + core       # suffix = core
        reference = core + random_dna(12, seed=12)   # prefix = core
        result = align(spec, query, reference, n_pe=4)
        assert result.score == len(core) * spec.default_params.match
        # path starts at the end of the query / inside the last row or col
        si, sj = result.start
        assert si == len(query) or sj == len(reference)

    def test_overlap_free_ends_not_penalised(self):
        spec = get_kernel(6)
        core = encode_dna("ACGTACGTACGT")
        q = random_dna(6, 13) + core
        r = core + random_dna(6, 14)
        with_junk = align(spec, q, r, n_pe=4).score
        without = align(spec, core, core, n_pe=4).score
        assert with_junk == without


class TestSemiglobal:
    def test_read_contained_in_reference(self):
        spec = get_kernel(7)
        read = encode_dna("GATTACAGTC")
        reference = random_dna(15, seed=15) + read + random_dna(15, seed=16)
        result = align(spec, read, reference, n_pe=4)
        assert result.score == len(read) * spec.default_params.match
        assert result.cigar == f"{len(read)}M"
        assert result.end[1] == 15  # located at the planted offset


class TestDTW:
    def test_identical_signals_zero_distance(self):
        from repro.data.signals import random_complex_signal

        sig = random_complex_signal(16, seed=17)
        result = align(get_kernel(9), sig, sig, n_pe=4)
        assert result.score == pytest.approx(0.0, abs=1e-6)
        assert result.cigar == f"{len(sig)}M"

    def test_stretched_signal_low_distance(self):
        from repro.data.signals import random_complex_signal, warp_signal

        ref = random_complex_signal(20, seed=18)
        stretched = warp_signal(ref, stretch=1.5, noise=0.0, seed=19)
        close = align(get_kernel(9), stretched, ref, n_pe=4).score
        other = random_complex_signal(len(stretched), seed=20)
        far = align(get_kernel(9), other, ref, n_pe=4).score
        assert close < far

    def test_warping_path_monotone(self):
        from repro.data.signals import random_complex_signal, warp_signal

        ref = random_complex_signal(12, seed=21)
        qry = warp_signal(ref, seed=22)[:12]
        aln = align(get_kernel(9), qry, ref, n_pe=4).alignment
        assert all(m is not Move.END for m in aln.moves)


class TestViterbi:
    def test_identical_beats_mutated(self):
        spec = get_kernel(10)
        seq = random_dna(20, seed=23)
        from tests.conftest import mutated_copy

        same = align(spec, seq, seq, n_pe=4).score
        other = align(spec, mutated_copy(seq, 24, 0.5)[:20], seq, n_pe=4).score
        assert same > other

    def test_loglik_negative(self):
        spec = get_kernel(10)
        seq = random_dna(16, seed=25)
        assert align(spec, seq, seq, n_pe=4).score < 0


class TestBanded:
    def test_in_band_alignment_matches_unbanded(self):
        """When the optimal path stays in the band, banding is lossless."""
        banded, unbanded = get_kernel(11), get_kernel(1)
        ref = random_dna(40, seed=26)
        qry = ref[:10] + (3 - ref[10],) + ref[11:]  # one substitution
        b = align(banded, qry, ref, n_pe=4)
        u = align(unbanded, qry, ref, n_pe=4)
        assert b.score == u.score
        assert b.cigar == u.cigar

    def test_banded_local_score_le_unbanded(self):
        banded, unbanded = get_kernel(12), get_kernel(4)
        q, r = random_dna(50, 27), random_dna(50, 28)
        assert align(banded, q, r, n_pe=4).score <= align(unbanded, q, r, n_pe=4).score


class TestSdtw:
    def test_finds_planted_subsignal(self):
        from repro.data.signals import sdtw_pair

        q, r = sdtw_pair(ref_bases=40, seed=29)
        spec = get_kernel(14)
        genuine = align(spec, q, r, n_pe=4).score
        rng = np.random.RandomState(30)
        random_q = tuple(int(v) for v in rng.randint(0, 256, size=len(q)))
        impostor = align(spec, random_q, r, n_pe=4).score
        assert genuine < impostor

    def test_free_placement_start_anywhere(self):
        spec = get_kernel(14)
        reference = tuple([50] * 10 + [200] * 5 + [50] * 10)
        query = (200, 200, 200)
        result = align(spec, query, reference, n_pe=4)
        assert result.score == 0  # perfect sub-signal match, no penalty


class TestProtein:
    def test_identical_proteins_score_blosum_diagonal(self):
        from repro.data.blosum import BLOSUM62

        spec = get_kernel(15)
        seq = encode_protein("MKTAYIAKQR")
        result = align(spec, seq, seq, n_pe=4)
        assert result.score == sum(BLOSUM62[a][a] for a in seq)

    def test_conservative_substitution_scores_higher(self):
        spec = get_kernel(15)
        base = encode_protein("MKTAYIAKQRMKTAYIAKQR")
        conservative = encode_protein("MKTAYLAKQRMKTAYIAKQR")  # I->L (+2)
        radical = encode_protein("MKTAYPAKQRMKTAYIAKQR")       # I->P (-3)
        s_cons = align(spec, conservative, base, n_pe=4).score
        s_rad = align(spec, radical, base, n_pe=4).score
        assert s_cons > s_rad
