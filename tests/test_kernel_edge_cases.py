"""Edge-case behaviour of individual kernels.

Boundary conditions the broad equivalence tests visit only by chance:
exact two-piece crossovers, affine open-vs-extend ties, DTW shape
asymmetry, Viterbi state transitions, profile gap columns, sDTW free
placement at the reference edges.
"""

import numpy as np
import pytest

from repro.core.alphabet import encode_dna
from repro.kernels import get_kernel
from repro.reference import oracle_align
from repro.systolic import align
from tests.conftest import random_dna


class TestTwoPieceCrossover:
    """cost(L) = max(o1 + L*e1, o2 + L*e2); pieces cross at L = 20 with
    the default parameters (o1=-4, e1=-2, o2=-24, e2=-1)."""

    @pytest.mark.parametrize("gap_len", (19, 20, 21))
    def test_exact_crossover_scores(self, gap_len):
        spec = get_kernel(5)
        p = spec.default_params
        ref = tuple(random_dna(40 + gap_len, seed=gap_len))
        qry = ref[:20] + ref[20 + gap_len:]
        result = align(spec, qry, ref, n_pe=8)
        expected_gap = max(
            p.gap_open1 + p.gap_extend1 * gap_len,
            p.gap_open2 + p.gap_extend2 * gap_len,
        )
        assert result.score == 40 * p.match + expected_gap

    def test_at_crossover_both_pieces_equal(self):
        p = get_kernel(5).default_params
        L = 20
        assert p.gap_open1 + p.gap_extend1 * L == p.gap_open2 + p.gap_extend2 * L


class TestAffineTies:
    def test_open_vs_extend_tie_prefers_open(self):
        """When extending and re-opening cost the same, the kernel's
        strict '>' comparison keeps the open (ext flag False) — pinned
        behaviour that traceback correctness relies on."""
        from repro.core.spec import PEInput
        from repro.kernels.common import AFFINE_I_EXT

        spec = get_kernel(2)
        p = spec.default_params
        # choose left H and left I so open == extend exactly
        h_left = 10.0
        i_left = h_left + p.gap_open  # ext: i_left + e == h_left + o + e
        cell = PEInput(
            up=(0.0, 0.0, 0.0), diag=(0.0, 0.0, 0.0),
            left=(h_left, i_left, 0.0), qry=0, ref=1, params=p,
        )
        _scores, ptr = spec.pe_func(cell)
        assert not (ptr & AFFINE_I_EXT)

    def test_gap_open_cost_exact(self):
        spec = get_kernel(2)
        p = spec.default_params
        ref = encode_dna("ACGTACGTAC")
        qry = ref[:5] + ref[6:]  # single deletion
        result = align(spec, qry, ref, n_pe=4)
        assert result.score == 9 * p.match + p.gap_open + p.gap_extend


class TestDtwShapes:
    def test_query_longer_than_reference(self):
        from repro.data.signals import random_complex_signal, warp_signal

        spec = get_kernel(9)
        ref = random_complex_signal(10, seed=1)
        qry = warp_signal(ref, stretch=2.0, noise=0.0, seed=2)
        assert len(qry) == 2 * len(ref)
        ours = align(spec, qry, ref, n_pe=4)
        oracle = oracle_align(spec, qry, ref)
        assert np.isclose(ours.score, oracle.score)
        # a noiseless stretch warps back to near-zero distance
        assert ours.score < 1e-6

    def test_single_sample_signals(self):
        spec = get_kernel(9)
        a = ((1.0, 0.0),)
        b = ((0.0, 1.0),)
        result = align(spec, a, b, n_pe=1)
        assert result.score == pytest.approx(2.0)


class TestViterbiTransitions:
    def test_gap_open_vs_extend_costs(self):
        """One length-2 reference gap costs mu + lambda, not 2*mu."""
        spec = get_kernel(10)
        p = spec.default_params
        seq = random_dna(12, seed=3)
        with_gap = seq[:6] + seq[8:]   # query missing 2 bases
        score = align(spec, with_gap, seq, n_pe=4).score
        match_e = p.emission[0][0]
        # 10 matched emissions + open + extend (fixed-point tolerance)
        expected = 10 * match_e + p.log_mu + p.log_lambda
        assert np.isclose(score, expected, atol=0.05)


class TestProfileGapColumns:
    def test_gap_heavy_column_scores_low(self):
        spec = get_kernel(8)
        solid = ((1.0, 0.0, 0.0, 0.0, 0.0),) * 6
        gappy = ((0.5, 0.0, 0.0, 0.0, 0.5),) * 6
        same = align(spec, solid, solid, n_pe=2).score
        degraded = align(spec, gappy, solid, n_pe=2).score
        assert same > degraded

    def test_column_validation_helper(self):
        from repro.kernels.profile import profile_column

        col = profile_column(0.25, 0.25, 0.25, 0.25, 0.0)
        assert sum(col) == 1.0
        with pytest.raises(ValueError):
            profile_column(0.9, 0.9, 0.0, 0.0, 0.0)


class TestSdtwEdges:
    def test_match_at_reference_start(self):
        spec = get_kernel(14)
        reference = (200, 200, 50, 50, 50)
        query = (200, 200)
        result = align(spec, query, reference, n_pe=2)
        assert result.score == 0
        # warping may repeat-match ref[0]; ties break to the smallest j,
        # but the zero-distance placement must sit in the 200-run
        assert result.start[0] == len(query)
        assert result.start[1] <= 2

    def test_match_at_reference_end(self):
        spec = get_kernel(14)
        reference = (50, 50, 50, 200, 200)
        query = (200, 200)
        result = align(spec, query, reference, n_pe=2)
        assert result.score == 0
        assert result.start[0] == len(query)
        assert result.start[1] >= 4  # inside the trailing 200-run

    def test_query_longer_than_reference_still_works(self):
        spec = get_kernel(14)
        result = align(spec, (10, 20, 30, 40), (10, 40), n_pe=2)
        oracle = oracle_align(spec, (10, 20, 30, 40), (10, 40))
        assert result.score == oracle.score


class TestOverlapEdges:
    def test_contained_read_prefers_containment_edge(self):
        """When b sits inside a, the overlap path ends on a row/col edge."""
        spec = get_kernel(6)
        outer = random_dna(30, seed=4)
        inner = outer[10:20]
        result = align(spec, outer, inner, n_pe=4)
        si, sj = result.start
        assert si == len(outer) or sj == len(inner)

    def test_no_overlap_scores_low(self):
        spec = get_kernel(6)
        a = (0,) * 15
        b = (3,) * 15
        result = align(spec, a, b, n_pe=4)
        assert result.score <= 0 or result.alignment.aligned_length <= 2
