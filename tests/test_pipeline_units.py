"""Unit tests for the pipeline building blocks: k-mer index, batched
GACT extension (byte-identity vs the serial tiler), and tile traces."""

import json

import numpy as np
import pytest

from repro.core.result import Move
from repro.kernels import get_kernel
from repro.pipeline import (
    KmerIndex,
    RuntimeTileDispatcher,
    TracingDispatcher,
    build_tile_runtime,
    count_matches,
    extend_batch,
    kmer_codes,
    read_trace,
    summarize_trace,
)
from repro.tiling import tiled_align
from tests.conftest import mutated_copy, random_dna


class TestKmerCodes:
    def test_codes_match_bruteforce(self):
        seq = random_dna(60, seed=1)
        k = 6
        codes = kmer_codes(seq, k)
        for i in range(len(seq) - k + 1):
            expected = 0
            for base in seq[i:i + k]:
                expected = expected * 4 + base
            assert codes[i] == expected

    def test_short_sequence_yields_empty(self):
        assert kmer_codes((0, 1, 2), 6).size == 0

    def test_rejects_non_dna_codes(self):
        with pytest.raises(ValueError, match="2-bit"):
            kmer_codes((0, 1, 9, 2, 3), 4)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError, match="k must be"):
            kmer_codes((0,) * 40, 40)


class TestKmerIndex:
    def test_lookup_matches_bruteforce(self):
        genome = random_dna(2000, seed=2)
        k = 8
        index = KmerIndex(genome, k=k, max_occ=64)
        for probe in (0, 100, 777, 1500):
            kmer = genome[probe:probe + k]
            code = int(kmer_codes(kmer, k)[0])
            expected = [
                p for p in range(len(genome) - k + 1)
                if genome[p:p + k] == kmer
            ]
            assert list(index.lookup(code)) == expected

    def test_repeat_kmers_are_masked(self):
        genome = (0,) * 500  # poly-A: every k-mer is the same repeat
        index = KmerIndex(genome, k=8, max_occ=16)
        assert index.lookup(0).size == 0
        assert index.anchors((0,) * 20) == []

    def test_anchor_cap_subsamples(self):
        genome = random_dna(5000, seed=3)
        index = KmerIndex(genome, k=6, max_occ=512)
        read = genome[1000:1400]
        capped = index.anchors(read, max_anchors=50)
        assert len(capped) <= 50

    def test_best_diagonal_recovers_origin(self):
        genome = random_dna(3000, seed=4)
        index = KmerIndex(genome, k=12)
        read = mutated_copy(genome[800:1100], seed=5, error_rate=0.1)
        diagonal, votes = index.best_diagonal(read)
        assert votes > 3
        assert abs(diagonal - 800) < 40

    def test_window_clamps_to_genome(self):
        genome = random_dna(500, seed=6)
        index = KmerIndex(genome, k=12)
        start, window = index.window(100, diagonal=-10, padding=32)
        assert start == 0
        start, window = index.window(100, diagonal=450, padding=32)
        assert start + len(window) == 500

    def test_genome_shorter_than_k_rejected(self):
        with pytest.raises(ValueError, match="shorter than k"):
            KmerIndex((0, 1, 2), k=12)


class TestExtendBatchByteIdentity:
    """The load-bearing claim: batched-across-reads stitching commits
    exactly what the serial GACT walk commits, read for read."""

    @pytest.mark.parametrize("backend", ["systolic", "compiled"])
    def test_matches_tiled_align(self, backend):
        spec = get_kernel(1)
        tile_size, overlap = 48, 12
        tasks = []
        for seed, (qlen, rlen) in enumerate(
            [(100, 110), (73, 73), (140, 120), (30, 160)]
        ):
            reference = random_dna(rlen, seed=40 + seed)
            query = mutated_copy(reference, seed=50 + seed)[:qlen]
            if not query:
                query = (0,)
            tasks.append((query, reference))
        dispatcher = RuntimeTileDispatcher(
            build_tile_runtime(tile_size=tile_size, n_pe=8, backend=backend)
        )
        outcomes = extend_batch(
            tasks, dispatcher, tile_size=tile_size, overlap=overlap
        )
        for (query, reference), outcome in zip(tasks, outcomes):
            serial = tiled_align(
                spec, query, reference,
                tile_size=tile_size, overlap=overlap, n_pe=8,
            )
            assert outcome.alignment.cigar == serial.cigar
            assert outcome.tiles == serial.n_tiles

    def test_count_matches_walks_the_path(self):
        query = (0, 1, 2, 3)
        reference = (0, 1, 0, 3, 2)
        moves = (Move.MATCH, Move.MATCH, Move.MATCH, Move.INS, Move.MATCH)
        # columns: 0==0, 1==1, 2!=0, (ins), 3!=2 -> 2 true matches
        assert count_matches(moves, query, reference) == 2

    def test_degenerate_overlap_rejected(self):
        dispatcher = RuntimeTileDispatcher(build_tile_runtime(tile_size=32))
        with pytest.raises(ValueError, match="overlap"):
            extend_batch([((0,), (0,))], dispatcher,
                         tile_size=32, overlap=32)


class TestTraces:
    def _dispatcher(self, tmp_path):
        inner = RuntimeTileDispatcher(
            build_tile_runtime(tile_size=32, n_pe=8, backend="compiled")
        )
        return TracingDispatcher(inner, tmp_path / "tiles.jsonl")

    def test_trace_roundtrip(self, tmp_path):
        tracer = self._dispatcher(tmp_path)
        pairs = [
            (random_dna(20, seed=9), random_dna(24, seed=10)),
            (random_dna(16, seed=11), random_dna(16, seed=11)),
        ]
        results = tracer.run_tiles(pairs)
        tracer.close()
        assert len(results) == 2 and tracer.records == 2
        entries = read_trace(tmp_path / "tiles.jsonl")
        assert [(q, r) for _, q, r in entries] == [
            (tuple(q), tuple(r)) for q, r in pairs
        ]
        assert all(k == tracer.kernel_id for k, _, _ in entries)

    def test_summary_counts_duplicates(self, tmp_path):
        tracer = self._dispatcher(tmp_path)
        pair = (random_dna(12, seed=12), random_dna(12, seed=13))
        tracer.run_tiles([pair, pair, pair])
        other = (random_dna(10, seed=14), random_dna(10, seed=15))
        tracer.run_tiles([other])
        tracer.close()
        summary = summarize_trace(read_trace(tmp_path / "tiles.jsonl"))
        assert summary.requests == 4
        assert summary.distinct == 2
        assert summary.duplicate_fraction == 0.5
        assert summary.kernels == (1,)

    def test_malformed_trace_fails_loudly(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"kernel": 1, "query": [0], "reference": [1]})
            + "\n{not json}\n"
        )
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            read_trace(path)

    def test_empty_sequences_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text(
            json.dumps({"kernel": 1, "query": [], "reference": [1]}) + "\n"
        )
        with pytest.raises(ValueError, match="empty"):
            read_trace(path)


class TestRuntimeDispatcher:
    def test_cached_runtime_attribution_flows_through(self):
        from repro.cache.facade import CacheStack

        runtime = build_tile_runtime(
            tile_size=32, n_pe=8, backend="compiled", cache=CacheStack()
        )
        dispatcher = RuntimeTileDispatcher(runtime)
        assert dispatcher.kernel_id == 1
        pair = (random_dna(20, seed=16), random_dna(20, seed=17))
        cold = dispatcher.run_tiles([pair])
        warm = dispatcher.run_tiles([pair])
        assert cold[0].cached is False
        assert warm[0].cached is True
        assert warm[0].moves == cold[0].moves
        assert not any(m is Move.END for m in cold[0].moves)
