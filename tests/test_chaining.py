"""Tests for the anchor-chaining DP."""

import pytest

from repro.apps.chaining import Anchor, Chain, anchors_from_index, chain_anchors
from repro.apps.read_mapper import ReadMapper
from repro.data.genome import extract_region, random_genome


def colinear(n, start_read=0, start_ref=100, step=20, length=12):
    return [
        Anchor(start_read + i * step, start_ref + i * step, length)
        for i in range(n)
    ]


class TestChainAnchors:
    def test_empty(self):
        assert chain_anchors([]) is None

    def test_single_anchor(self):
        chain = chain_anchors([Anchor(5, 50, 12)])
        assert chain.score == 12
        assert chain.read_span == (5, 17)

    def test_colinear_anchors_all_chain(self):
        anchors = colinear(5)
        chain = chain_anchors(anchors)
        assert len(chain.anchors) == 5
        assert chain.score > 5 * 12 - 1  # no drift, negligible cost

    def test_off_diagonal_outlier_excluded(self):
        anchors = colinear(4) + [Anchor(35, 900, 12)]
        chain = chain_anchors(anchors)
        assert all(a.ref_pos < 900 for a in chain.anchors)

    def test_small_indel_still_chains(self):
        # 3-base diagonal shift midway (an indel)
        first = colinear(3)
        shifted = [
            Anchor(a.read_pos, a.ref_pos + 3, a.length)
            for a in colinear(3, start_read=70, start_ref=170)
        ]
        chain = chain_anchors(first + shifted)
        assert len(chain.anchors) == 6

    def test_far_gap_breaks_chain(self):
        far = colinear(2) + colinear(2, start_read=500, start_ref=600)
        chain = chain_anchors(far, max_gap=64)
        assert len(chain.anchors) == 2

    def test_overlapping_anchors_not_chained(self):
        anchors = [Anchor(0, 100, 12), Anchor(4, 104, 12)]  # overlap by 8
        chain = chain_anchors(anchors)
        assert len(chain.anchors) == 1

    def test_prefers_dense_chain_over_lone_long_anchor(self):
        dense = colinear(6, length=10)
        lone = [Anchor(300, 9000, 25)]
        chain = chain_anchors(dense + lone)
        assert len(chain.anchors) == 6

    def test_spans(self):
        chain = chain_anchors(colinear(3))
        assert chain.read_span == (0, 52)
        assert chain.ref_span == (100, 152)

    def test_invalid_max_gap(self):
        with pytest.raises(ValueError):
            chain_anchors([Anchor(0, 0, 5)], max_gap=0)


class TestMapperIntegration:
    def test_chain_locates_read(self):
        genome = random_genome(800, seed=21, repeat_fraction=0.0)
        mapper = ReadMapper(genome, k=12)
        read = extract_region(genome, 333, 64)
        chain = mapper.chain(read)
        assert chain is not None
        ref_start, ref_end = chain.ref_span
        assert ref_start == 333
        # non-overlapping k-mers cover the read up to a final sub-k stub
        assert 333 + 64 - mapper.k < ref_end <= 333 + 64

    def test_anchors_from_index(self):
        genome = random_genome(200, seed=22, repeat_fraction=0.0)
        mapper = ReadMapper(genome, k=12)
        read = extract_region(genome, 50, 30)
        anchors = anchors_from_index(read, mapper._index, 12)
        assert anchors
        assert all(a.length == 12 for a in anchors)
        assert any(a.diagonal == 50 for a in anchors)

    def test_foreign_read_weak_chain(self):
        genome = random_genome(800, seed=23, repeat_fraction=0.0)
        mapper = ReadMapper(genome, k=12)
        foreign = random_genome(64, seed=99, repeat_fraction=0.0)
        chain = mapper.chain(foreign)
        real = mapper.chain(extract_region(genome, 100, 64))
        if chain is not None:
            assert real.score > 3 * chain.score
