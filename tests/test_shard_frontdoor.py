"""The sharded serving tier, end to end.

The load-bearing claim is shard transparency: a client must not be
able to tell (from response bytes) whether it spoke to the
single-process server or to N worker shards behind the front door.
That, plus the operational guarantees — reject-not-drop backpressure,
dead-shard eviction with ring remapping, aggregated metrics, graceful
drain with clean exit codes — is what this module pins.

Worker processes spawn real interpreters, so the 2-shard server is a
module-scoped fixture shared by every transparency/metrics test; the
eviction and backpressure tests build their own small servers because
they mutate or constrain the deployment.
"""

import json
import os
import random
import signal
import time

import multiprocessing

import pytest

from repro.service import AlignmentClient, InProcClient, Status
from repro.shard import Deployment, FrontDoorConfig, ShardServer
from repro.shard.router import FingerprintRouter
from repro.shard.worker import DRAIN, run_inline

KERNEL = 1


def workload(n=14, seed=11, cardinality=4, max_len=24):
    """Deterministic integer-symbol pairs for the dna kernel."""
    rng = random.Random(seed)
    return [
        (
            [rng.randrange(cardinality) for _ in range(rng.randint(6, max_len))],
            [rng.randrange(cardinality) for _ in range(rng.randint(6, max_len))],
        )
        for _ in range(n)
    ]


def deterministic(responses):
    """Canonical byte-comparison form of a response list."""
    return [
        json.dumps(r.to_dict(with_latency=False), sort_keys=True)
        for r in responses
    ]


@pytest.fixture(scope="module")
def deployment(tmp_path_factory):
    """A small cached deployment shared by the module's servers."""
    cache_root = tmp_path_factory.mktemp("shard-cache")
    return Deployment(
        kernel_ids=(KERNEL,), n_pe=8, max_len=64,
        cache_dir=str(cache_root / "cache"),
    )


@pytest.fixture(scope="module")
def baseline(deployment):
    """Single-process deterministic responses for the module workload."""
    core = deployment.build_core(cache=deployment.build_cache()).start()
    client = InProcClient(core)
    try:
        responses = [
            client.align(KERNEL, q, r, request_id=f"req-{i}")
            for i, (q, r) in enumerate(workload())
        ]
    finally:
        core.stop()
    assert all(r.status is Status.OK for r in responses)
    return deterministic(responses)


@pytest.fixture(scope="module")
def sharded(deployment):
    """A live 2-shard server (drained at module teardown)."""
    server = ShardServer(("127.0.0.1", 0), deployment, n_shards=2).start()
    yield server
    codes = server.close()
    assert codes == {} or all(code == 0 for code in codes.values()), codes


@pytest.fixture(scope="module")
def client(sharded):
    """One TCP client pinned to the module server."""
    tcp = AlignmentClient(*sharded.address, read_timeout=60.0)
    yield tcp
    tcp.close()


class TestShardTransparency:
    """Byte-identical responses, cold and warm."""

    def test_cold_pass_matches_single_process(self, client, baseline):
        responses = [
            client.align(KERNEL, q, r, request_id=f"req-{i}")
            for i, (q, r) in enumerate(workload())
        ]
        assert deterministic(responses) == baseline

    def test_warm_pass_matches_and_hits_both_shards(self, client, baseline):
        responses = [
            client.align(KERNEL, q, r, request_id=f"req-{i}")
            for i, (q, r) in enumerate(workload())
        ]
        assert deterministic(responses) == baseline
        snapshot = client.metrics()
        per_shard = {
            name: shard.get("counters", {}).get("cache_hits_total", 0)
            for name, shard in snapshot["shards"].items()
        }
        assert len(per_shard) == 2
        assert all(hits > 0 for hits in per_shard.values()), per_shard

    def test_unknown_kernel_reads_like_single_process(self, client):
        response = client.align(999, [0, 1], [1, 0], request_id="nope")
        assert response.status is Status.ERROR
        assert "kernel #999 is not deployed" in response.error

    def test_ping(self, client):
        assert client.ping()


class TestAggregation:
    """One metrics endpoint for the whole deployment."""

    def test_counters_sum_across_shards(self, client):
        snapshot = client.metrics()
        aggregate = snapshot["counters"]
        by_shard = [
            shard.get("counters", {}).get("aligned_total", 0)
            for shard in snapshot["shards"].values()
        ]
        assert aggregate["aligned_total"] == sum(by_shard)
        assert aggregate["frontdoor.routed_total"] >= sum(by_shard)
        assert "frontdoor.requests_total" in aggregate

    def test_histograms_merge_envelopes(self, client):
        snapshot = client.metrics()
        latency = snapshot["histograms"]["latency_ms"]
        assert latency["count"] > 0
        assert latency["min"] <= latency["mean"] <= latency["max"]

    def test_topology_is_reported(self, client):
        snapshot = client.metrics()
        ring = snapshot["frontdoor"]["ring"]
        assert ring["nodes"] == ["shard-00", "shard-01"]
        links = {link["name"]: link for link in snapshot["frontdoor"]["links"]}
        assert all(link["up"] for link in links.values())
        assert sum(link["routed_total"] for link in links.values()) > 0

    def test_metrics_text_has_shard_sections(self, client):
        text = client.metrics_text()
        assert "== shard-00 ==" in text
        assert "== shard-01 ==" in text
        assert "counter aligned_total" in text

    def test_trace_is_valid_chrome_shape(self, client):
        trace = client.trace()
        assert "traceEvents" in trace
        assert isinstance(trace["traceEvents"], list)


class TestRoutingKeyIsCacheKey:
    """The router must reproduce the workers' cache fingerprints."""

    def test_router_matches_cached_runtime(self, deployment):
        from repro.cache import CacheConfig, CacheStack
        from repro.cache.facade import CachedRuntime
        from repro.host import DeviceRuntime

        router = FingerprintRouter.from_deployment(deployment)
        spec = deployment.specs()[0]
        runtime = DeviceRuntime(
            spec, deployment.launch_config(), backend=deployment.backend
        )
        stack = CacheStack(CacheConfig(directory=None))
        cached = CachedRuntime(runtime, stack)
        assert router.runtime_keys[KERNEL] == cached.runtime_key
        query, reference = workload(1)[0]
        assert router.key(KERNEL, tuple(query), tuple(reference)) == (
            cached.pair_key(tuple(query), tuple(reference))
        )

    def test_unknown_kernel_raises(self, deployment):
        router = FingerprintRouter.from_deployment(deployment)
        with pytest.raises(KeyError):
            router.key(999, (0,), (1,))


class TestBackpressure:
    """Reject-not-drop at the per-shard in-flight window."""

    def test_window_overflow_rejects_and_answers_everything(self, tmp_path):
        # A deliberately sluggish single shard (long linger, huge
        # batch) holds requests in flight; a window of 1 then forces
        # deterministic rejections for the burst behind the first.
        deployment = Deployment(
            kernel_ids=(KERNEL,), n_pe=8, max_len=64,
            max_batch=64, max_delay_ms=300.0,
        )
        server = ShardServer(
            ("127.0.0.1", 0), deployment, n_shards=1,
            config=FrontDoorConfig(shard_inflight_bound=1),
        ).start()
        try:
            client = AlignmentClient(*server.address, read_timeout=60.0)
            slots = [
                client.submit(KERNEL, q, r, request_id=f"bp-{i}")
                for i, (q, r) in enumerate(workload(8))
            ]
            responses = [slot.result(timeout=60.0) for slot in slots]
            client.close()
        finally:
            codes = server.close()
        statuses = [r.status for r in responses]
        assert len(responses) == 8  # answered, never dropped
        assert Status.REJECTED in statuses
        assert Status.OK in statuses
        rejected = [r for r in responses if r.status is Status.REJECTED]
        assert all("retry" in r.error for r in rejected)
        assert all(code == 0 for code in codes.values())


class TestEviction:
    """A killed worker is detected, evicted and routed around."""

    def test_dead_shard_evicts_and_survivor_serves(self, tmp_path):
        deployment = Deployment(kernel_ids=(KERNEL,), n_pe=8, max_len=64)
        server = ShardServer(
            ("127.0.0.1", 0), deployment, n_shards=2,
            config=FrontDoorConfig(
                heartbeat_interval_s=0.2,
                heartbeat_timeout_s=0.5,
                heartbeat_misses=2,
            ),
        ).start()
        try:
            client = AlignmentClient(*server.address, read_timeout=60.0)
            victim = server.manager.handles()[0]
            os.kill(victim.process.pid, signal.SIGKILL)
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if len(server.frontdoor.ring) == 1:
                    break
                time.sleep(0.05)
            assert len(server.frontdoor.ring) == 1
            # Every key now routes to the survivor and must still serve.
            responses = [
                client.align(KERNEL, q, r, request_id=f"ev-{i}", timeout=60.0)
                for i, (q, r) in enumerate(workload(6))
            ]
            assert all(r.status is Status.OK for r in responses)
            snapshot = client.metrics()
            assert snapshot["counters"]["frontdoor.shards_evicted_total"] == 1
            assert len(snapshot["shards"]) == 1
            client.close()
        finally:
            codes = server.close()
        assert all(code == 0 for code in codes.values()), codes


class TestWorkerProtocol:
    """The parent ↔ worker control pipe, exercised without a spawn."""

    def test_inline_worker_ready_serve_drain(self):
        deployment = Deployment(kernel_ids=(KERNEL,), n_pe=8, max_len=64)
        parent, child = multiprocessing.Pipe()
        thread = run_inline(deployment, "inline-00", child)
        assert parent.poll(60.0)
        status, port = parent.recv()
        assert status == "ready"
        client = AlignmentClient("127.0.0.1", port)
        query, reference = workload(1)[0]
        response = client.align(KERNEL, query, reference, request_id="w-0")
        assert response.status is Status.OK
        client.close()
        parent.send(DRAIN)
        assert parent.poll(30.0)
        assert parent.recv() == ("stopped", "inline-00")
        thread.join(timeout=30.0)
        assert not thread.is_alive()

    def test_construction_failure_reports_over_pipe(self):
        deployment = Deployment(kernel_ids=(KERNEL,), n_pe=8, max_len=64,
                                backend="no-such-backend")
        parent, child = multiprocessing.Pipe()
        thread = run_inline(deployment, "inline-01", child)
        assert parent.poll(60.0)
        status, reason = parent.recv()
        assert status == "failed"
        assert reason
        thread.join(timeout=30.0)


class TestDeployment:
    """The shared deployment value object."""

    def test_for_shard_narrows_cache_root(self):
        deployment = Deployment(kernel_ids=(KERNEL,), cache_dir="/tmp/root")
        narrowed = deployment.for_shard("shard-03")
        assert narrowed.cache_dir == "/tmp/root/shard-shard-03"
        assert Deployment(kernel_ids=(KERNEL,)).for_shard("x").cache_dir is None

    def test_needs_a_kernel(self):
        with pytest.raises(ValueError):
            Deployment(kernel_ids=())

    def test_struct_kernels_are_refused(self):
        from repro.kernels import list_kernels

        struct_ids = [
            info["id"] for info in list_kernels() if info["struct_alphabet"]
        ]
        if not struct_ids:
            pytest.skip("no struct-alphabet kernels registered")
        with pytest.raises(ValueError):
            Deployment(kernel_ids=(struct_ids[0],)).specs()
