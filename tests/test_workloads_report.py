"""Tests for the experiment workloads and the table renderer."""

import pytest

from repro.experiments.report import format_table, speedup
from repro.experiments.workloads import WORKLOADS
from repro.kernels import KERNELS


class TestWorkloads:
    def test_every_kernel_has_a_workload(self):
        assert set(WORKLOADS) == set(KERNELS)

    @pytest.mark.parametrize("kid", sorted(WORKLOADS))
    def test_pairs_match_alphabet(self, kid):
        workload = WORKLOADS[kid]
        alphabet = KERNELS[kid].alphabet
        pairs = workload.make_pairs(2, seed=kid)
        assert len(pairs) == 2
        for query, reference in pairs:
            assert len(query) >= 1 and len(reference) >= 1
            assert alphabet.validate_symbol(query[0])
            assert alphabet.validate_symbol(reference[-1])

    @pytest.mark.parametrize("kid", sorted(WORKLOADS))
    def test_pairs_fit_declared_maxima(self, kid):
        workload = WORKLOADS[kid]
        for query, reference in workload.make_pairs(2, seed=kid + 1):
            assert len(query) <= workload.max_query_len
            assert len(reference) <= workload.max_ref_len

    def test_banded_workloads_equal_lengths(self):
        for kid in (11, 13):
            for q, r in WORKLOADS[kid].make_pairs(3, seed=5):
                assert len(q) == len(r)

    def test_deterministic(self):
        a = WORKLOADS[1].make_pairs(2, seed=9)
        b = WORKLOADS[1].make_pairs(2, seed=9)
        assert a == b

    def test_protein_workload_longer(self):
        assert WORKLOADS[15].max_query_len == 360  # Swiss-Prot mean length


class TestFormatTable:
    def test_alignment_and_divider(self):
        text = format_table(["name", "value"], [("a", 1), ("bb", 22)])
        lines = text.split("\n")
        assert len(lines) == 4
        assert set(lines[1]) <= {"-", " "}
        assert len(lines[0]) == len(lines[1])

    def test_title(self):
        text = format_table(["x"], [(1,)], title="hello")
        assert text.startswith("hello")

    def test_float_formats(self):
        text = format_table(["v"], [(1.5,), (3.51e6,), (0.0,), (1e-9,)])
        assert "1.5" in text
        assert "3.510e+06" in text
        assert "1.000e-09" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text

    def test_speedup(self):
        assert speedup(10.0, 5.0) == 2.0
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)
