"""Tests for design-space exploration."""

import pytest

from repro.kernels import get_kernel
from repro.synth.device import FpgaDevice
from repro.synth.dse import (
    DseResult,
    explore,
    find_optimal_config,
    pareto_frontier,
)

SMALL_SPACE = dict(
    n_pe_choices=(16, 32), n_b_choices=(1, 4, 8), n_k_choices=(1, 2)
)


class TestExplore:
    def test_counts_and_feasibility(self):
        result = explore(get_kernel(1), **SMALL_SPACE)
        assert result.explored == 12
        assert 0 < len(result.feasible) <= 12

    def test_best_is_max_throughput(self):
        result = explore(get_kernel(1), **SMALL_SPACE)
        best = result.best
        assert all(
            best.alignments_per_sec >= r.alignments_per_sec
            for r in result.feasible
        )

    def test_dsp_hungry_kernel_constrained(self):
        """Profile alignment's DSP appetite caps its parallelism."""
        result = explore(get_kernel(8), **SMALL_SPACE)
        best = result.best
        assert best.config.n_blocks < 16

    def test_no_feasible_config_raises(self):
        tiny = FpgaDevice("tiny", luts=1000, ffs=2000, bram36=2, dsps=2)
        result = explore(get_kernel(1), device=tiny, **SMALL_SPACE)
        with pytest.raises(ValueError):
            _ = result.best

    def test_find_optimal_config(self):
        report = find_optimal_config(get_kernel(12), **SMALL_SPACE)
        assert report.feasible


class TestPareto:
    def test_frontier_monotone(self):
        result = explore(get_kernel(2), **SMALL_SPACE)
        frontier = pareto_frontier(result)
        luts = [r.total.luts for r in frontier]
        thr = [r.alignments_per_sec for r in frontier]
        assert luts == sorted(luts)
        assert thr == sorted(thr)

    def test_frontier_subset_of_feasible(self):
        result = explore(get_kernel(2), **SMALL_SPACE)
        frontier = pareto_frontier(result)
        assert set(id(r) for r in frontier) <= set(id(r) for r in result.feasible)

    def test_frontier_contains_best(self):
        result = explore(get_kernel(2), **SMALL_SPACE)
        frontier = pareto_frontier(result)
        assert frontier[-1].alignments_per_sec == result.best.alignments_per_sec

    def test_empty_frontier(self):
        assert pareto_frontier(DseResult(feasible=(), explored=0)) == []
