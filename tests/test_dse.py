"""Tests for design-space exploration."""

import pytest

from repro.kernels import get_kernel
from repro.synth.device import FpgaDevice
from repro.synth.device import XCVU9P
from repro.synth.dse import (
    DseResult,
    budget_caps,
    clear_explore_memo,
    explore,
    explore_memo_stats,
    find_optimal_config,
    pareto_frontier,
)

SMALL_SPACE = dict(
    n_pe_choices=(16, 32), n_b_choices=(1, 4, 8), n_k_choices=(1, 2)
)


class TestExplore:
    def test_counts_and_feasibility(self):
        result = explore(get_kernel(1), **SMALL_SPACE)
        assert result.explored == 12
        assert 0 < len(result.feasible) <= 12

    def test_best_is_max_throughput(self):
        result = explore(get_kernel(1), **SMALL_SPACE)
        best = result.best
        assert all(
            best.alignments_per_sec >= r.alignments_per_sec
            for r in result.feasible
        )

    def test_dsp_hungry_kernel_constrained(self):
        """Profile alignment's DSP appetite caps its parallelism."""
        result = explore(get_kernel(8), **SMALL_SPACE)
        best = result.best
        assert best.config.n_blocks < 16

    def test_no_feasible_config_raises(self):
        tiny = FpgaDevice("tiny", luts=1000, ffs=2000, bram36=2, dsps=2)
        result = explore(get_kernel(1), device=tiny, **SMALL_SPACE)
        with pytest.raises(ValueError):
            _ = result.best

    def test_find_optimal_config(self):
        report = find_optimal_config(get_kernel(12), **SMALL_SPACE)
        assert report.feasible


class TestPareto:
    def test_frontier_monotone(self):
        result = explore(get_kernel(2), **SMALL_SPACE)
        frontier = pareto_frontier(result)
        luts = [r.total.luts for r in frontier]
        thr = [r.alignments_per_sec for r in frontier]
        assert luts == sorted(luts)
        assert thr == sorted(thr)

    def test_frontier_subset_of_feasible(self):
        result = explore(get_kernel(2), **SMALL_SPACE)
        frontier = pareto_frontier(result)
        assert set(id(r) for r in frontier) <= set(id(r) for r in result.feasible)

    def test_frontier_contains_best(self):
        result = explore(get_kernel(2), **SMALL_SPACE)
        frontier = pareto_frontier(result)
        assert frontier[-1].alignments_per_sec == result.best.alignments_per_sec

    def test_empty_frontier(self):
        assert pareto_frontier(DseResult(feasible=(), explored=0)) == []


class TestMemo:
    def setup_method(self):
        clear_explore_memo()

    def test_repeat_explore_hits_memo(self):
        stats0 = explore_memo_stats()
        first = explore(get_kernel(1), **SMALL_SPACE)
        mid = explore_memo_stats()
        assert mid["misses"] == stats0["misses"] + 1
        second = explore(get_kernel(1), **SMALL_SPACE)
        after = explore_memo_stats()
        assert after["hits"] == mid["hits"] + 1
        assert after["misses"] == mid["misses"]
        assert second is first  # the memo returns the same result object

    def test_distinct_keys_do_not_collide(self):
        explore(get_kernel(1), **SMALL_SPACE)
        explore(get_kernel(2), **SMALL_SPACE)
        explore(get_kernel(1), max_query_len=128, **SMALL_SPACE)
        assert explore_memo_stats()["entries"] == 3

    def test_use_memo_false_bypasses(self):
        explore(get_kernel(1), **SMALL_SPACE)
        before = explore_memo_stats()
        explore(get_kernel(1), use_memo=False, **SMALL_SPACE)
        after = explore_memo_stats()
        assert after == before


class TestBudget:
    def setup_method(self):
        clear_explore_memo()

    def test_fractional_budget_caps(self):
        caps = budget_caps(0.5, XCVU9P)
        assert caps["lut"] == pytest.approx(0.5 * XCVU9P.usable("lut"))
        assert set(caps) == {"lut", "ff", "bram", "dsp"}

    def test_mapping_budget_validates_kinds(self):
        with pytest.raises(ValueError):
            budget_caps({"luts": 100.0}, XCVU9P)
        with pytest.raises(ValueError):
            budget_caps({"lut": -1.0}, XCVU9P)
        with pytest.raises(ValueError):
            budget_caps(1.5, XCVU9P)

    def test_budgeted_optimum_respects_caps(self):
        unconstrained = find_optimal_config(get_kernel(1), **SMALL_SPACE)
        budget = 0.5
        constrained = find_optimal_config(
            get_kernel(1), budget=budget, **SMALL_SPACE
        )
        caps = budget_caps(budget, XCVU9P)
        assert constrained.total.luts <= caps["lut"]
        assert constrained.total.ffs <= caps["ff"]
        assert constrained.total.bram36 <= caps["bram"]
        assert constrained.total.dsps <= caps["dsp"]
        assert (
            constrained.alignments_per_sec
            <= unconstrained.alignments_per_sec
        )

    def test_impossible_budget_raises(self):
        with pytest.raises(ValueError):
            find_optimal_config(
                get_kernel(1), budget={"lut": 1.0}, **SMALL_SPACE
            )
