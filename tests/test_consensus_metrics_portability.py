"""Tests for consensus polishing, alignment metrics and device portability."""

import pytest

from repro.apps.consensus import consensus, polish_contig
from repro.core.alphabet import encode_dna
from repro.data.genome import random_genome
from repro.data.metrics import (
    alignment_identity,
    cigar_counts,
    query_coverage,
    reference_coverage,
    sequence_identity,
)
from repro.kernels import get_kernel
from repro.systolic import align
from tests.conftest import mutated_copy


class TestConsensus:
    def test_identical_reads_exact(self):
        truth = random_genome(30, seed=1, repeat_fraction=0.0)
        assert consensus([truth, truth, truth]) == truth

    def test_majority_overrides_noise(self):
        """Five noisy copies out-vote each other's independent errors."""
        truth = random_genome(40, seed=2, repeat_fraction=0.0)
        reads = [
            mutated_copy(truth, seed=10 + k, error_rate=0.06)
            for k in range(5)
        ]
        cons = consensus(reads)
        assert sequence_identity(cons, truth) > 0.95

    def test_single_read_passthrough(self):
        truth = random_genome(15, seed=3)
        assert consensus([truth]) == truth

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            consensus([])

    def test_polish_improves_noisy_contig(self):
        truth = random_genome(40, seed=4, repeat_fraction=0.0)
        noisy_contig = mutated_copy(truth, seed=20, error_rate=0.12)
        reads = [
            mutated_copy(truth, seed=30 + k, error_rate=0.06)
            for k in range(4)
        ]
        polished = polish_contig(noisy_contig, reads)
        assert sequence_identity(polished, truth) >= \
            sequence_identity(noisy_contig, truth)


class TestMetrics:
    def test_cigar_counts(self):
        assert cigar_counts("3M1I2M2D") == {"M": 5, "I": 1, "D": 2}

    def test_cigar_empty(self):
        assert cigar_counts("") == {"M": 0, "I": 0, "D": 0}

    def test_cigar_malformed(self):
        with pytest.raises(ValueError):
            cigar_counts("3M1X")

    def test_identity_perfect(self):
        seq = encode_dna("ACGTACGT")
        result = align(get_kernel(1), seq, seq, n_pe=4)
        assert alignment_identity(result.alignment, seq, seq) == 1.0

    def test_identity_counts_gaps_as_errors(self):
        a = encode_dna("ACGTACGT")
        b = encode_dna("ACGACGT")  # one deletion
        result = align(get_kernel(1), a, b, n_pe=4)
        identity = alignment_identity(result.alignment, a, b)
        assert identity == pytest.approx(7 / 8)

    def test_coverage_global(self):
        a = encode_dna("ACGTAC")
        result = align(get_kernel(1), a, a, n_pe=4)
        assert query_coverage(result.alignment, len(a)) == 1.0
        assert reference_coverage(result.alignment, len(a)) == 1.0

    def test_coverage_local_partial(self):
        motif = encode_dna("GATTACAGA")
        query = encode_dna("TTTT") + motif + encode_dna("CCCC")
        result = align(get_kernel(3), query, motif, n_pe=4)
        assert query_coverage(result.alignment, len(query)) < 1.0
        assert reference_coverage(result.alignment, len(motif)) == 1.0


class TestPortability:
    @pytest.fixture(scope="class")
    def rows(self):
        from repro.experiments.portability import build_portability

        return build_portability(kernel_ids=(1, 8))

    def test_every_device_gets_a_config(self, rows):
        devices = {r.device for r in rows}
        assert len(devices) == 3
        assert len(rows) == 6

    def test_bigger_device_never_slower(self, rows):
        from repro.experiments.portability import throughput_by_device

        table = throughput_by_device(rows)
        f1 = table["xcvu9p-flgb2104-2-i"]
        u50 = table["xcu50-fsvh2104-2-e"]
        embedded = table["xczu7ev-ffvc1156-2-e"]
        for kid in (1, 8):
            assert f1[kid] >= u50[kid] >= embedded[kid]

    def test_embedded_part_costs_real_throughput(self, rows):
        from repro.experiments.portability import throughput_by_device

        table = throughput_by_device(rows)
        f1 = table["xcvu9p-flgb2104-2-i"]
        embedded = table["xczu7ev-ffvc1156-2-e"]
        # the order-of-magnitude-smaller part loses most of the parallel
        # blocks for every kernel class, yet stays deployable
        for kid in (1, 8):
            assert embedded[kid] < 0.5 * f1[kid]
            assert embedded[kid] > 0

    def test_render(self, rows):
        from repro.experiments.portability import render

        text = render(rows)
        assert "xczu7ev" in text
