"""Golden regression vectors: fixed inputs, pinned outputs.

Engine/oracle equivalence catches *internal* inconsistency; these vectors
catch *semantic drift* — if a scoring convention, tie-break or FSM detail
changes, a pinned score/CIGAR here changes with it and the diff shows up
in review.  Inputs are tiny and hand-checkable; every pinned value was
cross-checked against the independent textbook implementations when the
vector was recorded.
"""

import numpy as np
import pytest

from repro.core.alphabet import encode_dna, encode_protein
from repro.kernels import get_kernel
from repro.systolic import align

#: Query differs from the reference by one mismatch (T vs A at offset 3)
#: and one missing base (the reference's second T at offset 9).
QUERY = encode_dna("ACGTTAGCATCGGA")
REF = encode_dna("ACGATAGCTATCGGA")

GOLDEN_DNA = {
    # kid: (score, cigar)
    # #1: 13 matches (+26), 1 mismatch (-2), 1 gap (-3) = 21
    1: (21, "8M1I6M"),
    # #2: 13*2 - 4 (mismatch) - (4 + 2) (affine gap of 1) = 16
    2: (16, "8M1I6M"),
    3: (21, "8M1I6M"),
    4: (16, "8M1I6M"),
    # #5: short piece charges the length-1 gap: -(4 + 2) = 16
    5: (16, "8M1I6M"),
    # #6: overlap scoring (match 2 / mismatch -3 / gap -2) = 26 - 3 - 2 = 21
    6: (21, "8M1I6M"),
    7: (21, "8M1I6M"),
}


@pytest.mark.parametrize("kid,expected", sorted(GOLDEN_DNA.items()))
def test_dna_kernel_golden(kid, expected):
    result = align(get_kernel(kid), QUERY, REF, n_pe=4)
    assert (result.score, result.cigar) == expected, (
        f"kernel #{kid} drifted: got ({result.score}, {result.cigar!r})"
    )


def test_banded_kernels_golden():
    q = encode_dna("ACGTTAGCATCGGAT")
    r = encode_dna("ACGATAGCTATCGGA")
    assert align(get_kernel(11), q, r, n_pe=4).score == 18
    assert align(get_kernel(12), q, r, n_pe=4).score == 16
    assert align(get_kernel(13), q, r, n_pe=4).score == 10


def test_protein_golden():
    query = encode_protein("MKWVTFISLLLLFSSAYS")
    ref = encode_protein("MKWVTFLSLLLLFSSAYS")  # one I -> L substitution
    result = align(get_kernel(15), query, ref, n_pe=4)
    # Sum of BLOSUM62 diagonal over the query, swapping one I/I (+4) for
    # the conservative I/L (+2):
    from repro.data.blosum import BLOSUM62

    diagonal = sum(BLOSUM62[a][a] for a in query)
    assert result.score == diagonal - BLOSUM62[9][9] + BLOSUM62[9][10] == 87
    assert result.cigar == "18M"


def test_sdtw_golden():
    query = (100, 120, 110)
    reference = (10, 100, 121, 110, 10, 10)
    result = align(get_kernel(14), query, reference, n_pe=2)
    assert result.score == 1  # perfect placement bar one off-by-one sample
    assert result.start == (3, 4)


def test_viterbi_golden():
    seq = encode_dna("ACGTACGT")
    result = align(get_kernel(10), seq, seq, n_pe=4)
    p = get_kernel(10).default_params
    # Eight matching emissions, no gap states (fixed-point quantized).
    assert np.isclose(result.score, 8 * p.emission[0][0], atol=1e-2)


def test_dtw_golden():
    sig_a = ((0.0, 0.0), (1.0, 0.0), (2.0, 0.0))
    sig_b = ((0.0, 0.0), (1.0, 0.0), (1.0, 0.0), (2.0, 0.0))
    result = align(get_kernel(9), sig_a, sig_b, n_pe=2)
    assert result.score == 0.0  # the warp absorbs the duplicated sample
    assert result.cigar == "2M1I1M"
