"""Tests for the downstream applications built on the kernels."""

import numpy as np
import pytest

from repro.apps import ReadMapper, greedy_assemble, progressive_msa
from repro.apps.assembler import best_overlap
from repro.apps.msa import GAP, pairwise_distance_matrix, upgma
from repro.data.genome import extract_region, random_genome, reverse_complement
from tests.conftest import mutated_copy


class TestMsa:
    def family(self, n=4, length=36, divergence=0.1, seed=1):
        ancestor = random_genome(length, seed=seed, repeat_fraction=0.0)
        return [ancestor] + [
            mutated_copy(ancestor, seed + k, divergence) for k in range(1, n)
        ]

    def test_rows_equal_length(self):
        msa = progressive_msa(self.family())
        assert len({len(row) for row in msa.rows}) == 1

    def test_ungapped_rows_reproduce_inputs(self):
        family = self.family()
        msa = progressive_msa(family)
        for idx, row in zip(msa.order, msa.rows):
            assert tuple(v for v in row if v != GAP) == tuple(family[idx])

    def test_identical_sequences_no_gaps(self):
        seq = random_genome(24, seed=2, repeat_fraction=0.0)
        msa = progressive_msa([seq, seq, seq])
        assert msa.n_columns == len(seq)
        assert msa.identity() == 1.0

    def test_related_family_high_identity(self):
        msa = progressive_msa(self.family(divergence=0.08, seed=3))
        assert msa.identity() > 0.8

    def test_single_sequence(self):
        seq = random_genome(10, seed=4)
        msa = progressive_msa([seq])
        assert msa.rows == [list(seq)]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            progressive_msa([])

    def test_pretty_renders_gaps(self):
        msa = progressive_msa(self.family(n=2, divergence=0.3, seed=5))
        text = msa.pretty()
        assert len(text.split("\n")) == 2

    def test_distance_matrix_properties(self):
        family = self.family(n=3)
        dist = pairwise_distance_matrix(family)
        assert np.allclose(dist, dist.T)
        assert np.allclose(np.diag(dist), 0.0)
        assert (dist >= 0).all()

    def test_upgma_pairs_closest_first(self):
        dist = np.array(
            [[0.0, 0.1, 0.9], [0.1, 0.0, 0.8], [0.9, 0.8, 0.0]]
        )
        tree = upgma(dist)
        # topology check, child order irrelevant: {0,1} cluster first
        assert set(map(str, tree)) in ({"(0, 1)", "2"}, {"(1, 0)", "2"})

    def test_upgma_single_leaf(self):
        assert upgma(np.zeros((1, 1))) == 0


class TestReadMapper:
    @pytest.fixture(scope="class")
    def genome(self):
        return random_genome(1200, seed=7, repeat_fraction=0.0)

    @pytest.fixture(scope="class")
    def mapper(self, genome):
        return ReadMapper(genome, k=12)

    def test_exact_read_maps_to_origin(self, genome, mapper):
        read = extract_region(genome, 413, 50)
        hit = mapper.map(read)
        assert hit is not None
        assert hit.strand == "+"
        assert mapper.mapped_start(hit) == 413

    def test_reverse_strand_detected(self, genome, mapper):
        read = reverse_complement(extract_region(genome, 600, 50))
        hit = mapper.map(read)
        assert hit is not None
        assert hit.strand == "-"
        assert abs(mapper.mapped_start(hit) - 600) <= 2

    def test_noisy_read_still_maps(self, genome, mapper):
        read = mutated_copy(extract_region(genome, 250, 60), 8, 0.08)
        hit = mapper.map(read)
        assert hit is not None
        assert abs(mapper.mapped_start(hit) - 250) <= 6

    def test_foreign_read_rejected(self, mapper):
        foreign = random_genome(50, seed=99, repeat_fraction=0.0)
        assert mapper.map(foreign) is None

    def test_short_read_rejected(self, mapper):
        with pytest.raises(ValueError):
            mapper.map((0, 1, 2))

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            ReadMapper((0, 1, 2, 3) * 10, k=2)


class TestAssembler:
    def test_error_free_reconstruction(self):
        genome = random_genome(160, seed=11, repeat_fraction=0.0)
        reads = [genome[0:60], genome[40:110], genome[90:160]]
        contigs = greedy_assemble(reads, min_overlap_score=30)
        assert contigs == [genome]

    def test_read_order_irrelevant(self):
        genome = random_genome(140, seed=12, repeat_fraction=0.0)
        reads = [genome[80:140], genome[0:60], genome[40:100]]
        contigs = greedy_assemble(reads, min_overlap_score=30)
        assert contigs == [genome]

    def test_disjoint_reads_stay_separate(self):
        a = random_genome(50, seed=13, repeat_fraction=0.0)
        b = random_genome(50, seed=14, repeat_fraction=0.0)
        contigs = greedy_assemble([a, b], min_overlap_score=30)
        assert sorted(map(len, contigs)) == [50, 50]

    def test_empty(self):
        assert greedy_assemble([]) == []

    def test_best_overlap_detects_join(self):
        genome = random_genome(100, seed=15, repeat_fraction=0.0)
        found = best_overlap(genome[0:60], genome[40:100])
        assert found is not None
        score, a_start, b_end = found
        assert (a_start, b_end) == (40, 20)

    def test_best_overlap_rejects_containment(self):
        genome = random_genome(80, seed=16, repeat_fraction=0.0)
        # b strictly inside a: optimal path is not a suffix->prefix join
        assert best_overlap(genome, genome[20:50]) is None
