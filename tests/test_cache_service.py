"""The cache wired through the serving stack (acceptance criteria).

Pins ISSUE 5's service-level contract: with a cache stack on the pool,
a repeated workload through :class:`ServiceCore` sees a ≥90% hit rate
on the second pass with responses byte-identical to the cold pass, the
``fingerprint``/``cached`` attribution reaches clients, the service
counters and ``metrics_snapshot`` expose the cache, and a restart over
the same directory warm-starts.  With no cache (the default), nothing
changes.
"""

import pytest

from repro.cache import CacheConfig, CacheStack, CachedRuntime
from repro.host import DeviceRuntime
from repro.kernels import get_kernel
from repro.service import (
    BatcherConfig,
    DevicePool,
    InProcClient,
    ServiceCore,
    Status,
)
from repro.synth import LaunchConfig
from tests.conftest import mutated_copy, random_dna

KERNEL_IDS = (1, 3)


def small_config(**overrides):
    base = dict(n_pe=8, n_b=4, n_k=1, max_query_len=64, max_ref_len=64)
    base.update(overrides)
    return LaunchConfig(**base)


def make_workload(n, length=16):
    out = []
    for k in range(n):
        ref = random_dna(length, seed=500 + k)
        qry = mutated_copy(ref, 900 + k)[:length]
        out.append((KERNEL_IDS[k % len(KERNEL_IDS)], qry, ref))
    return out


def cached_pool(stack):
    return DevicePool(
        [
            DeviceRuntime(get_kernel(kernel_id), small_config())
            for kernel_id in KERNEL_IDS
        ],
        cache=stack,
    )


def push(core, workload, with_latency=True):
    """Submit a workload in-proc; returns the responses in order."""
    client = InProcClient(core)
    slots = [
        client.submit(kernel_id, query, reference)
        for kernel_id, query, reference in workload
    ]
    responses = [slot.result(timeout=60.0) for slot in slots]
    assert all(r.status is Status.OK for r in responses)
    return responses


class TestServiceHitPath:
    def test_second_pass_hits_and_byte_identity(self):
        """The headline acceptance run: ≥90% hit rate on the repeat
        pass, responses byte-identical to the cold pass."""
        stack = CacheStack(CacheConfig())
        core = ServiceCore(
            cached_pool(stack), BatcherConfig(max_batch=8)
        ).start()
        try:
            workload = make_workload(24)
            cold = push(core, workload)
            warm = push(core, workload)
        finally:
            core.stop()
        warm_hits = sum(1 for r in warm if r.cached)
        assert warm_hits / len(warm) >= 0.90
        for before, after in zip(cold, warm):
            assert before.to_dict(with_latency=False) == after.to_dict(
                with_latency=False
            )
        counters = core.metrics_snapshot()["counters"]
        assert counters["cache_hits_total"] >= warm_hits
        assert counters["cache_misses_total"] >= 1

    def test_fingerprint_and_cached_reach_the_client(self):
        stack = CacheStack(CacheConfig())
        core = ServiceCore(
            cached_pool(stack), BatcherConfig(max_batch=4)
        ).start()
        try:
            workload = make_workload(4)
            cold = push(core, workload)
            warm = push(core, workload)
        finally:
            core.stop()
        for response in cold + warm:
            assert response.fingerprint is not None
            assert len(response.fingerprint) == 64
        assert [r.fingerprint for r in cold] == [
            r.fingerprint for r in warm
        ]
        assert not any(r.cached for r in cold)
        assert all(r.cached for r in warm)

    def test_metrics_snapshot_exposes_cache_stats(self):
        stack = CacheStack(CacheConfig())
        core = ServiceCore(
            cached_pool(stack), BatcherConfig(max_batch=4)
        ).start()
        try:
            push(core, make_workload(4))
            snapshot = core.metrics_snapshot()
        finally:
            core.stop()
        assert snapshot["cache"]["memory"]["puts"] >= 1
        assert snapshot["cache"]["disk"] is None
        assert "singleflight" in snapshot["cache"]

    def test_restart_warm_starts_from_directory(self, tmp_path):
        workload = make_workload(8)
        stack = CacheStack(CacheConfig(directory=str(tmp_path)))
        core = ServiceCore(
            cached_pool(stack), BatcherConfig(max_batch=8)
        ).start()
        try:
            cold = push(core, workload)
        finally:
            core.stop()
            stack.close()
        # Fresh stack + fresh pool over the same directory = a restart.
        stack2 = CacheStack(CacheConfig(directory=str(tmp_path)))
        core2 = ServiceCore(
            cached_pool(stack2), BatcherConfig(max_batch=8)
        ).start()
        try:
            warm = push(core2, workload)
        finally:
            core2.stop()
            stack2.close()
        assert all(r.cached for r in warm)
        for before, after in zip(cold, warm):
            assert before.to_dict(with_latency=False) == after.to_dict(
                with_latency=False
            )
        assert stack2.stats()["disk"]["replayed_records"] == 8


class TestCacheDisabledDefault:
    def test_pool_without_cache_is_unwrapped(self):
        pool = DevicePool([
            DeviceRuntime(get_kernel(1), small_config())
        ])
        assert pool.cache is None
        assert not isinstance(pool.members[0].runtime, CachedRuntime)

    def test_responses_carry_no_attribution_without_cache(self):
        pool = DevicePool([
            DeviceRuntime(get_kernel(1), small_config())
        ])
        core = ServiceCore(pool, BatcherConfig(max_batch=4)).start()
        workload = [
            (1, qry, ref) for _kernel, qry, ref in make_workload(2)
        ]
        try:
            responses = push(core, workload)
            snapshot = core.metrics_snapshot()
        finally:
            core.stop()
        for response in responses:
            assert response.fingerprint is None
            assert response.cached is None
        assert "cache" not in snapshot
        assert "cache_hits_total" not in snapshot["counters"]
