"""Tests for the repro.obs observability layer.

Covers the recorder hierarchy (null / metrics / trace), span-tree
nesting across threads, the Chrome trace-event export schema, the
process-global current-recorder plumbing, the deprecation shims of the
old DeviceRuntime API, and the registry's id/name lookup equivalence.
"""

import json
import threading

import pytest

from repro.kernels import get_kernel, is_registered, kernel_ids, list_kernels
from repro.obs import (
    MetricsRecorder,
    MetricsRegistry,
    NULL_RECORDER,
    NullRecorder,
    TraceRecorder,
    chrome_trace,
    get_recorder,
    render_text_snapshot,
    set_recorder,
    use_recorder,
    write_chrome_trace,
)


class TestNullRecorder:
    def test_everything_is_a_noop(self):
        recorder = NullRecorder()
        assert recorder.enabled is False
        with recorder.span("engine.x", k=1):
            recorder.count("c")
            recorder.gauge("g", 1.0)
            recorder.observe("h", 2.0)
            recorder.instant("i")
            recorder.record_span("s", 0.0, 1.0)
        assert recorder.events() == []
        assert recorder.snapshot() == {
            "counters": {}, "histograms": {}, "gauges": {},
        }

    def test_span_handle_is_reusable(self):
        recorder = NullRecorder()
        first = recorder.span("a")
        second = recorder.span("b")
        assert first is second  # the shared no-op context manager


class TestMetricsRecorder:
    def test_counts_and_observations_reach_the_registry(self):
        registry = MetricsRegistry()
        recorder = MetricsRecorder(registry)
        recorder.count("reqs", 3)
        recorder.observe("lat", 5.0)
        recorder.gauge("util", 0.5)
        snap = recorder.snapshot()
        assert snap["counters"]["reqs"] == 3
        assert snap["histograms"]["lat"]["count"] == 1
        assert snap["gauges"]["util"] == 0.5

    def test_spans_are_dropped(self):
        recorder = MetricsRecorder()
        assert recorder.enabled is False
        with recorder.span("service.x"):
            pass
        assert recorder.events() == []


class TestTraceRecorderSpans:
    def test_span_tree_nesting(self):
        recorder = TraceRecorder()
        with recorder.span("service.request"):
            with recorder.span("host.run"):
                with recorder.span("engine.align"):
                    pass
            with recorder.span("host.schedule"):
                pass
        spans = {e.name: e for e in recorder.events() if e.kind == "span"}
        # Innermost spans record first (they exit first).
        assert spans["engine.align"].depth == 2
        assert spans["host.run"].depth == 1
        assert spans["service.request"].depth == 0
        assert spans["service.request"].parent_id is None
        assert spans["host.run"].parent_id == spans["service.request"].span_id
        assert spans["engine.align"].parent_id == spans["host.run"].span_id
        assert spans["host.schedule"].parent_id == \
            spans["service.request"].span_id

    def test_span_timing_is_monotonic_relative(self):
        recorder = TraceRecorder()
        with recorder.span("a"):
            with recorder.span("b"):
                pass
        outer = next(e for e in recorder.events() if e.name == "a")
        inner = next(e for e in recorder.events() if e.name == "b")
        assert outer.ts_s >= 0.0 and inner.ts_s >= outer.ts_s
        assert outer.dur_s >= inner.dur_s >= 0.0

    def test_threads_build_independent_trees(self):
        recorder = TraceRecorder()

        def worker(label):
            with recorder.span(f"outer.{label}"):
                with recorder.span(f"inner.{label}"):
                    pass

        threads = [
            threading.Thread(target=worker, args=(k,)) for k in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        events = recorder.events()
        assert len(events) == 16
        for k in range(8):
            outer = next(e for e in events if e.name == f"outer.{k}")
            inner = next(e for e in events if e.name == f"inner.{k}")
            assert inner.parent_id == outer.span_id
            assert inner.tid == outer.tid
            assert outer.parent_id is None

    def test_concurrent_counting_is_consistent(self):
        recorder = TraceRecorder()

        def worker():
            for _ in range(200):
                recorder.count("hits")

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert recorder.snapshot()["counters"]["hits"] == 800
        samples = [e for e in recorder.events() if e.kind == "counter"]
        assert len(samples) == 800

    def test_buffer_is_bounded(self):
        recorder = TraceRecorder(max_events=5)
        for k in range(9):
            recorder.instant(f"marker.{k}")
        assert len(recorder.events()) == 5
        assert recorder.dropped_events == 4
        recorder.clear()
        assert recorder.events() == []
        assert recorder.dropped_events == 0

    def test_record_span_for_async_intervals(self):
        import time

        recorder = TraceRecorder()
        start = time.monotonic()
        end = start + 0.25
        recorder.record_span("service.request", start, end, request_id="r1")
        event = recorder.events()[0]
        assert event.kind == "span"
        assert event.args["request_id"] == "r1"
        assert event.dur_s == pytest.approx(0.25)

    def test_category_is_the_dotted_prefix(self):
        recorder = TraceRecorder()
        with recorder.span("engine.align"):
            pass
        recorder.instant("plain")
        events = recorder.events()
        assert events[0].category == "engine"  # span records on exit
        assert events[1].category == "plain"


class TestCurrentRecorder:
    def test_default_is_the_null_recorder(self):
        assert get_recorder() is NULL_RECORDER

    def test_use_recorder_scopes_and_restores(self):
        recorder = TraceRecorder()
        with use_recorder(recorder) as installed:
            assert installed is recorder
            assert get_recorder() is recorder
        assert get_recorder() is NULL_RECORDER

    def test_use_recorder_restores_on_error(self):
        recorder = TraceRecorder()
        with pytest.raises(RuntimeError):
            with use_recorder(recorder):
                raise RuntimeError("boom")
        assert get_recorder() is NULL_RECORDER

    def test_set_recorder_returns_previous(self):
        recorder = TraceRecorder()
        previous = set_recorder(recorder)
        try:
            assert previous is NULL_RECORDER
            assert get_recorder() is recorder
        finally:
            set_recorder(previous)


class TestChromeTraceExport:
    def _traced_recorder(self):
        recorder = TraceRecorder()
        with recorder.span("service.batch", size=2):
            with recorder.span("engine.align", kernel="nw"):
                recorder.count("engine.cells", 100)
        recorder.instant("service.flush", trigger="size")
        return recorder

    def test_schema(self):
        trace = chrome_trace(self._traced_recorder())
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        phases = {e["ph"] for e in events}
        assert {"X", "i", "C", "M"} <= phases
        for event in events:
            assert isinstance(event["name"], str)
            assert event["pid"] == 0
            if event["ph"] == "X":
                assert event["ts"] >= 0.0
                assert event["dur"] >= 0.0
                assert event["cat"] in ("service", "engine")
            if event["ph"] == "M":
                assert event["name"] == "thread_name"
                assert "name" in event["args"]

    def test_span_parentage_survives_export(self):
        trace = chrome_trace(self._traced_recorder())
        spans = {
            e["name"]: e for e in trace["traceEvents"] if e["ph"] == "X"
        }
        assert spans["engine.align"]["args"]["parent_id"] == \
            spans["service.batch"]["args"]["span_id"]

    def test_counter_events_carry_cumulative_values(self):
        trace = chrome_trace(self._traced_recorder())
        counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        assert counters[0]["args"] == {"engine.cells": 100}

    def test_json_serializable_and_writable(self, tmp_path):
        recorder = self._traced_recorder()
        path = tmp_path / "trace.json"
        written = write_chrome_trace(recorder, str(path))
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(written))

    def test_empty_recorder_yields_valid_trace(self):
        trace = chrome_trace(NullRecorder())
        assert trace["traceEvents"] == []


class TestTextSnapshot:
    def test_renders_every_instrument_kind(self):
        recorder = MetricsRecorder()
        recorder.count("reqs", 7)
        recorder.gauge("util", 0.25)
        recorder.observe("lat", 3.0)
        text = render_text_snapshot(recorder.snapshot())
        assert "counter reqs 7" in text
        assert "gauge util 0.25" in text
        assert "histogram lat count 1" in text
        assert "histogram lat p50 3" in text


class TestInstrumentedStack:
    """The real request path emits spans from every layer."""

    def test_engine_and_host_spans(self):
        from repro.host import DeviceRuntime
        from repro.synth import LaunchConfig

        recorder = TraceRecorder()
        runtime = DeviceRuntime(get_kernel(1), LaunchConfig(
            n_pe=8, n_b=2, n_k=1, max_query_len=64, max_ref_len=64,
        ))
        with use_recorder(recorder):
            outcome = runtime.run([((0, 1, 2, 3), (0, 1, 2, 3))])
        assert not outcome.errors
        categories = {
            e.category for e in recorder.events() if e.kind == "span"
        }
        assert {"host", "engine", "parallel"} <= categories
        names = {e.name for e in recorder.events() if e.kind == "span"}
        assert {"host.run", "host.execute", "host.schedule",
                "engine.align", "engine.chunk"} <= names
        counters = recorder.snapshot()["counters"]
        assert counters["engine.alignments"] == 1
        assert counters["engine.cells"] > 0
        assert counters["host.pairs"] == 1

    def test_disabled_recorder_changes_nothing(self):
        from repro.host import DeviceRuntime
        from repro.synth import LaunchConfig

        runtime = DeviceRuntime(get_kernel(1), LaunchConfig(
            n_pe=8, n_b=2, n_k=1, max_query_len=64, max_ref_len=64,
        ))
        pair = ((0, 1, 2, 3), (0, 1, 2, 3))
        plain = runtime.run([pair]).results[0]
        with use_recorder(TraceRecorder()):
            traced = runtime.run([pair]).results[0]
        assert plain == traced


class TestNoWallClockTimestamps:
    def test_no_time_time_in_src(self):
        """Elapsed-time measurement must use the monotonic clock."""
        import pathlib

        src = pathlib.Path(__file__).resolve().parent.parent / "src"
        offenders = [
            path for path in src.rglob("*.py")
            if "time.time(" in path.read_text(encoding="utf-8")
        ]
        assert offenders == []


class TestRegistryLookup:
    def test_id_name_and_numeric_string_equivalence(self):
        for kid in kernel_ids():
            spec = get_kernel(kid)
            assert get_kernel(spec.name) is spec
            assert get_kernel(str(kid)) is spec
            assert get_kernel(spec) is spec

    def test_unknown_lookups_raise_keyerror(self):
        with pytest.raises(KeyError):
            get_kernel(999)
        with pytest.raises(KeyError):
            get_kernel("no_such_kernel")
        with pytest.raises(KeyError):
            get_kernel("999")

    def test_is_registered(self):
        import dataclasses

        spec = get_kernel(1)
        assert is_registered(spec)
        assert not is_registered(dataclasses.replace(spec, name="copy"))

    def test_list_kernels_metadata(self):
        infos = list_kernels()
        assert [info["id"] for info in infos] == kernel_ids()
        for info in infos:
            spec = get_kernel(info["id"])
            assert info["name"] == spec.name
            assert info["traceback"] == spec.has_traceback
            assert info["alphabet"] == spec.alphabet.name
            json.dumps(info)  # metadata must be JSON-safe
