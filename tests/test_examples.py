"""Smoke tests: every shipped example must run to completion.

Heavy constants are shrunk through module attributes where needed so the
suite stays fast; the examples' own assertions (homolog ranking, viral
separation, custom-kernel equivalence) still execute.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, **attr_overrides):
    """Execute an example as __main__ with optional constant overrides."""
    path = EXAMPLES / name
    if not attr_overrides:
        runpy.run_path(str(path), run_name="__main__")
        return
    # Load the module without running main, patch, then call main().
    namespace = runpy.run_path(str(path), run_name="not_main")
    namespace.update(attr_overrides)
    # Rebind globals the functions captured.
    main = namespace["main"]
    main.__globals__.update(attr_overrides)
    main()


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "CIGAR" in out and "synthesis report" in out


def test_custom_kernel(capsys):
    run_example("custom_kernel.py")
    out = capsys.readouterr().out
    assert "edit distance" in out


def test_protein_search(capsys):
    run_example("protein_search.py")
    assert "homologs" in capsys.readouterr().out


def test_viral_detection(capsys):
    run_example("viral_detection_sdtw.py", N_READS=6, VIRUS_BASES=80)
    assert "separation" in capsys.readouterr().out


def test_long_read_tiling(capsys):
    run_example("long_read_tiling.py", READ_LENGTH=500)
    out = capsys.readouterr().out
    assert "tiled" in out and "direct" in out


def test_mixed_pipeline(capsys):
    run_example("mixed_pipeline.py")
    out = capsys.readouterr().out
    assert "linked design" in out and "makespan" in out


def test_fastq_mapping_pipeline(capsys):
    run_example("fastq_mapping_pipeline.py")
    out = capsys.readouterr().out
    assert "SAM written" in out and "accuracy" in out


def test_msa_phylogeny(capsys):
    run_example("msa_phylogeny.py")
    out = capsys.readouterr().out
    assert "guide tree" in out and "identity" in out


def test_design_space_exploration(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["design_space_exploration.py", "1"])
    run_example("design_space_exploration.py")
    assert "selected configuration" in capsys.readouterr().out
