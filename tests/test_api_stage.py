"""The ``repro.api`` Stage/Pipeline protocol: composition, backpressure,
drain semantics, failure propagation, and the app-stage ports."""

import threading
import time

import pytest

from repro.api import FnStage, Pipeline, PipelineError, Stage
from repro.api.stage import StageStats
from tests.conftest import mutated_copy, random_dna


class Doubler(Stage):
    """Emit each chunk twice (tests multi-output fan-out)."""

    def process(self, chunk):
        """Two copies of every input chunk."""
        return [chunk, chunk]


class Summing(Stage):
    """Accumulate, emit only on finish (tests drain semantics)."""

    def __init__(self):
        self.total = 0
        self.closed = False

    def process(self, chunk):
        """Swallow the chunk into the running total."""
        self.total += sum(chunk)
        return ()

    def finish(self):
        """Emit the accumulated total once upstream drains."""
        return [self.total]

    def close(self):
        """Record the close for lifecycle assertions."""
        self.closed = True


class TestPipelineBasics:
    def test_fnstage_transform_preserves_order(self):
        pipeline = Pipeline([FnStage(lambda c: [c * 2], "double")])
        out, report = pipeline.run_collect(iter([1, 2, 3]))
        assert out == [2, 4, 6]
        assert report.emitted == 3
        assert report.dropped == 0
        assert report.stage("double").chunks_in == 3

    def test_multi_output_and_finish_emission(self):
        summing = Summing()
        pipeline = Pipeline([Doubler(), summing])
        out, report = pipeline.run_collect(iter([[1], [2, 3]]))
        # Doubler emits each chunk twice -> 1+1 + 2+3+2+3 = 12 on drain.
        assert out == [12]
        assert summing.closed
        assert report.stage("doubler").items_out == 4

    def test_unique_names_required(self):
        with pytest.raises(ValueError, match="unique"):
            Pipeline([FnStage(lambda c: [c], "x"), FnStage(lambda c: [c], "x")])

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            Pipeline([])

    def test_default_stage_name_is_lowered_class_name(self):
        assert Doubler().name == "doubler"


class TestBackpressure:
    def test_bounded_queues_limit_source_readahead(self):
        """With queue_bound=1 and a blocked stage, the feeder cannot race
        ahead: at most bound + in-process-chunk items leave the source."""
        pulled = []
        release = threading.Event()
        entered = threading.Event()

        def source():
            for i in range(50):
                pulled.append(i)
                yield i

        def gated(chunk):
            entered.set()
            release.wait(timeout=30.0)
            return [chunk]

        pipeline = Pipeline([FnStage(gated, "gate")], queue_bound=1)
        worker = threading.Thread(
            target=pipeline.run, args=(source(),), daemon=True
        )
        worker.start()
        assert entered.wait(timeout=10.0)
        time.sleep(0.3)  # give the feeder every chance to overrun
        # one chunk in the stage + queue_bound queued + one in the
        # feeder's hand
        assert len(pulled) <= 3
        release.set()
        worker.join(timeout=30.0)
        assert not worker.is_alive()
        assert len(pulled) == 50

    def test_reject_not_drop_no_chunks_lost(self):
        pipeline = Pipeline(
            [FnStage(lambda c: [c], "a"), FnStage(lambda c: [c + 1], "b")],
            queue_bound=2,
        )
        out, report = pipeline.run_collect(iter(range(100)))
        assert out == list(range(1, 101))
        assert report.dropped == 0


class TestFailurePropagation:
    def test_stage_error_raises_pipeline_error_with_stage_name(self):
        def boom(chunk):
            raise RuntimeError("kaput")

        closed = Summing()
        pipeline = Pipeline([FnStage(boom, "boom"), closed])
        with pytest.raises(PipelineError, match="stage 'boom' failed: kaput"):
            pipeline.run(iter([1, 2, 3]))
        # downstream stages are still drained and closed
        assert closed.closed

    def test_error_report_counts_errors(self):
        def boom(chunk):
            raise ValueError("nope")

        pipeline = Pipeline([FnStage(boom, "boom")])
        with pytest.raises(PipelineError) as excinfo:
            pipeline.run(iter([1]))
        assert isinstance(excinfo.value.error, ValueError)


class TestStageStats:
    def test_queue_percentiles_nearest_rank(self):
        stats = StageStats(name="s")
        stats.queue_ms.extend(float(v) for v in range(1, 101))
        # nearest rank over 1..100: round(q * 99) + 1
        assert stats.queue_p50_ms == 51.0
        assert stats.queue_p95_ms == 95.0

    def test_empty_samples_are_zero(self):
        stats = StageStats(name="s")
        assert stats.queue_p50_ms == 0.0
        assert stats.to_dict()["queue_p95_ms"] == 0.0


class TestAppStagePorts:
    """The ported application stages speak the Stage protocol."""

    def test_read_mapper_stage(self):
        from repro.apps.read_mapper import ReadMapper, ReadMapperStage

        genome = random_dna(600, seed=5)
        reads = [
            ("r0", mutated_copy(genome[100:180], seed=6, error_rate=0.1)),
            ("r1", (0, 1)),  # shorter than k -> unmappable
        ]
        stage = ReadMapperStage(ReadMapper(genome, k=12))
        assert stage.name == "map"
        (out,) = stage.process(reads)
        assert [name for name, _, _ in out] == ["r0", "r1"]
        assert out[0][2] is not None and out[1][2] is None

    def test_chain_stage(self):
        from collections import defaultdict

        from repro.apps.chaining import ChainStage

        genome = random_dna(400, seed=7)
        k = 12
        index = defaultdict(list)
        for pos in range(len(genome) - k + 1):
            index[tuple(genome[pos:pos + k])].append(pos)
        stage = ChainStage(index, k)
        (out,) = stage.process([("r0", genome[50:120])])
        name, chain = out[0]
        assert name == "r0" and chain is not None and chain.score > 0

    def test_assembler_stage_accumulates_until_finish(self):
        from repro.apps.assembler import AssemblerStage

        genome = random_dna(120, seed=8)
        stage = AssemblerStage(min_overlap_score=10.0)
        assert stage.process([genome[:70]]) == ()
        assert stage.process([genome[40:]]) == ()
        (contigs,) = stage.finish()
        assert len(contigs) >= 1
