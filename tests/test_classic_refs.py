"""Framework kernels vs independent textbook implementations.

The engine/oracle pair shares the KernelSpec; these tests close the loop
against :mod:`repro.reference.classic`, which shares *nothing* with the
framework, so a semantic error in a PE function cannot hide.
"""

import numpy as np
import pytest

from repro.data.blosum import BLOSUM62
from repro.data.profiles import profile_pair
from repro.data.protein import mutate_protein, random_protein
from repro.data.signals import random_complex_signal, sdtw_pair, warp_signal
from repro.kernels import get_kernel
from repro.kernels.profile import default_sop_matrix
from repro.reference import classic
from repro.systolic import align
from tests.conftest import mutated_copy, random_dna


def dna_case(seed, n=26, m=30):
    ref = random_dna(m, seed)
    qry = mutated_copy(ref, seed + 99)[:n]
    return qry, ref


@pytest.mark.parametrize("seed", range(4))
def test_global_linear_vs_nw(seed):
    q, r = dna_case(seed)
    ours = align(get_kernel(1), q, r, n_pe=4).score
    assert ours == classic.nw_linear(q, r)


@pytest.mark.parametrize("seed", range(4))
def test_local_linear_vs_sw(seed):
    q, r = dna_case(seed + 10)
    ours = align(get_kernel(3), q, r, n_pe=4).score
    assert ours == classic.sw_linear(q, r)


@pytest.mark.parametrize("seed", range(4))
def test_global_affine_vs_gotoh(seed):
    q, r = dna_case(seed + 20)
    ours = align(get_kernel(2), q, r, n_pe=4).score
    assert ours == classic.gotoh_global(q, r)


@pytest.mark.parametrize("seed", range(4))
def test_local_affine_vs_gotoh_local(seed):
    q, r = dna_case(seed + 30)
    ours = align(get_kernel(4), q, r, n_pe=4).score
    assert ours == classic.gotoh_local(q, r)


@pytest.mark.parametrize("seed", range(4))
def test_two_piece_vs_classic(seed):
    q, r = dna_case(seed + 40)
    ours = align(get_kernel(5), q, r, n_pe=4).score
    assert ours == classic.two_piece_global(q, r)


@pytest.mark.parametrize("seed", range(4))
def test_overlap_vs_classic(seed):
    q, r = dna_case(seed + 50)
    ours = align(get_kernel(6), q, r, n_pe=4).score
    assert ours == classic.overlap_score(q, r)


@pytest.mark.parametrize("seed", range(4))
def test_semiglobal_vs_classic(seed):
    q, r = dna_case(seed + 60)
    ours = align(get_kernel(7), q, r, n_pe=4).score
    assert ours == classic.semiglobal_score(q, r)


@pytest.mark.parametrize("seed", range(3))
def test_profile_vs_classic(seed):
    qp, rp = profile_pair(n_cols=14, seed=seed)
    spec = get_kernel(8)
    ours = align(spec, qp, rp, n_pe=4).score
    expected = classic.profile_global(qp, rp, default_sop_matrix(),
                                      gap=spec.default_params.linear_gap)
    assert np.isclose(ours, expected, atol=1e-3)


@pytest.mark.parametrize("seed", range(3))
def test_dtw_vs_classic(seed):
    ref = random_complex_signal(20, seed=seed)
    qry = warp_signal(ref, seed=seed + 1)[:20]
    ours = align(get_kernel(9), qry, ref, n_pe=4).score
    expected = classic.dtw_distance(qry, ref)
    assert np.isclose(ours, expected, atol=1e-2)


@pytest.mark.parametrize("seed", range(3))
def test_viterbi_vs_classic(seed):
    q, r = dna_case(seed + 70, n=18, m=18)
    spec = get_kernel(10)
    p = spec.default_params
    ours = align(spec, q, r, n_pe=4).score
    expected = classic.viterbi_loglik(q, r, p.log_mu, p.log_lambda, p.emission)
    assert np.isclose(ours, expected, atol=1e-2)


@pytest.mark.parametrize("seed", range(3))
def test_banded_global_vs_classic(seed):
    n = 30
    q, r = random_dna(n, seed + 80), random_dna(n, seed + 81)
    ours = align(get_kernel(11), q, r, n_pe=4).score
    assert ours == classic.banded_nw_linear(q, r, band=32)


@pytest.mark.parametrize("seed", range(3))
def test_banded_local_affine_vs_classic(seed):
    q, r = dna_case(seed + 90, n=40, m=40)
    ours = align(get_kernel(12), q, r, n_pe=4).score
    assert ours == classic.banded_gotoh_local(q, r, band=32)


@pytest.mark.parametrize("seed", range(3))
def test_banded_two_piece_vs_classic(seed):
    n = 40
    q, r = random_dna(n, seed + 100), random_dna(n, seed + 101)
    ours = align(get_kernel(13), q, r, n_pe=4).score
    assert ours == classic.banded_two_piece_global(q, r, band=32)


@pytest.mark.parametrize("seed", range(3))
def test_sdtw_vs_classic(seed):
    q, r = sdtw_pair(ref_bases=24, seed=seed)
    ours = align(get_kernel(14), q, r, n_pe=4).score
    assert ours == classic.sdtw_distance(q, r)


@pytest.mark.parametrize("seed", range(3))
def test_protein_vs_classic(seed):
    ref = random_protein(28, seed=seed)
    qry = mutate_protein(ref, seed=seed + 1)[:28]
    ours = align(get_kernel(15), qry, ref, n_pe=4).score
    assert ours == classic.matrix_local(qry, ref, BLOSUM62,
                                        gap=get_kernel(15).default_params.linear_gap)


def test_banded_matches_unbanded_when_band_covers_matrix():
    """A band wider than the matrix must reproduce the unbanded result."""
    q, r = dna_case(123, n=20, m=20)
    assert classic.banded_nw_linear(q, r, band=64) == classic.nw_linear(q, r)
