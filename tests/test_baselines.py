"""Tests for the baseline models (functional halves + performance sanity)."""

import pytest

from repro.baselines import (
    BSW,
    GACT,
    SQUIGGLEFILTER,
    CudaSW4Model,
    EmbossWaterModel,
    Gasal2Model,
    Minimap2Model,
    SeqAn3Model,
    VitisGenomicsSWModel,
    iso_cost_factor,
)
from repro.baselines.costmodel import C4_8XLARGE_USD_HR, P3_2XLARGE_USD_HR
from repro.kernels import get_kernel
from repro.synth.throughput import cycles_per_alignment
from repro.systolic import align
from tests.conftest import mutated_copy, random_dna


class TestCostModel:
    def test_cpu_nearly_iso_cost(self):
        assert iso_cost_factor(C4_8XLARGE_USD_HR) == pytest.approx(1.037, abs=0.01)

    def test_gpu_costs_more(self):
        assert iso_cost_factor(P3_2XLARGE_USD_HR) < 0.6

    def test_invalid_price(self):
        with pytest.raises(ValueError):
            iso_cost_factor(0.0)


class TestSeqAn3:
    def test_functional_matches_framework(self):
        ref = random_dna(24, seed=1)
        qry = mutated_copy(ref, seed=2)
        for kid in SeqAn3Model.SUPPORTED_KERNELS:
            if kid in (11,):
                q, r = random_dna(24, 3), random_dna(24, 4)
            else:
                q, r = qry, ref
            baseline_score = SeqAn3Model.align(kid, q, r)
            ours = align(get_kernel(kid), q, r, n_pe=4).score
            assert baseline_score == ours, f"kernel #{kid}"

    def test_throughput_flat_across_kernels(self):
        """Section 7.4: SeqAn3 shows only minor variability across kernels."""
        model = SeqAn3Model()
        values = [
            model.throughput_alignments_per_sec(kid, 256, 256)
            for kid in SeqAn3Model.SUPPORTED_KERNELS
        ]
        assert max(values) < 2.0 * min(values)

    def test_unsupported_kernel(self):
        with pytest.raises(ValueError):
            SeqAn3Model().throughput_alignments_per_sec(9, 256, 256)
        with pytest.raises(ValueError):
            SeqAn3Model.align(9, (0,), (0,))


class TestMinimap2AndEmboss:
    def test_minimap2_functional(self):
        ref = random_dna(20, seed=5)
        qry = mutated_copy(ref, seed=6)
        assert Minimap2Model.align(qry, ref) == align(
            get_kernel(5), qry, ref, n_pe=4
        ).score

    def test_emboss_functional(self):
        from repro.data.protein import mutate_protein, random_protein

        ref = random_protein(20, seed=7)
        qry = mutate_protein(ref, seed=8)[:20]
        assert EmbossWaterModel.align(qry, ref) == align(
            get_kernel(15), qry, ref, n_pe=4
        ).score

    def test_emboss_much_slower_than_seqan(self):
        emboss = EmbossWaterModel().throughput_alignments_per_sec(256, 256)
        seqan = SeqAn3Model().throughput_alignments_per_sec(1, 256, 256)
        assert emboss < seqan / 10


class TestGpuModels:
    def test_gasal2_functional(self):
        ref = random_dna(20, seed=9)
        qry = mutated_copy(ref, seed=10)
        for kid in (2, 4):
            assert Gasal2Model.align(kid, qry, ref) == align(
                get_kernel(kid), qry, ref, n_pe=4
            ).score

    def test_gasal2_unsupported(self):
        with pytest.raises(ValueError):
            Gasal2Model().throughput_alignments_per_sec(1, 256, 256)

    def test_iso_cost_discounts_gpu(self):
        model = Gasal2Model()
        raw = model.throughput_alignments_per_sec(2, 256, 256)
        adjusted = model.iso_cost_throughput(2, 256, 256)
        assert adjusted < raw

    def test_cudasw_faster_than_gasal(self):
        cud = CudaSW4Model().throughput_alignments_per_sec(256, 256)
        gas = Gasal2Model().throughput_alignments_per_sec(4, 256, 256)
        assert cud > gas


class TestRtlBaselines:
    @pytest.mark.parametrize("baseline", (GACT, BSW, SQUIGGLEFILTER))
    def test_rtl_always_at_least_as_fast(self, baseline):
        spec = baseline.spec()
        cycles = cycles_per_alignment(spec, 32, 256, 256)
        assert baseline.cycles(32, 256, 256, dp_hls_cycles=cycles) <= cycles

    @pytest.mark.parametrize("baseline", (GACT, BSW, SQUIGGLEFILTER))
    def test_rtl_resources_comparable(self, baseline):
        from repro.synth.resources import estimate_resources

        rtl = baseline.resources(32)
        ours = estimate_resources(baseline.spec(), 32)
        assert 0.8 * ours.luts <= rtl.luts <= ours.luts
        assert rtl.dsps <= ours.dsps

    def test_kernel_mapping(self):
        assert GACT.kernel_id == 2
        assert BSW.kernel_id == 12
        assert SQUIGGLEFILTER.kernel_id == 14


class TestHlsBaseline:
    def test_slower_than_dp_hls(self):
        model = VitisGenomicsSWModel()
        dp_hls = cycles_per_alignment(get_kernel(3), 32, 256, 256)
        assert model.cycles(256, 256) > dp_hls

    def test_throughput_positive(self):
        assert VitisGenomicsSWModel().throughput_alignments_per_sec(256, 256) > 0
