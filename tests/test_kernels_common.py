"""Unit tests for the shared kernel building blocks (FSMs, inits, cascade)."""

import numpy as np
import pytest

from repro.core.result import Move
from repro.core.spec import TB_DIAG, TB_END, TB_LEFT, TB_UP
from repro.kernels.common import (
    AFFINE_D_EXT,
    AFFINE_I_EXT,
    DEL,
    INS,
    LONG_DEL,
    LONG_INS,
    MM,
    TP_DEL,
    TP_DIAG,
    TP_END,
    TP_INS,
    TP_LDEL,
    TP_LINS,
    affine_ptr,
    affine_tb,
    constant_init,
    linear_gap_init,
    linear_tb,
    pick_best,
    substitution,
    two_piece_ptr,
    two_piece_tb,
    zero_init,
)


class TestPickBest:
    def test_picks_maximum(self):
        assert pick_best([(1, "a"), (5, "b"), (3, "c")]) == (5, "b")

    def test_first_wins_ties(self):
        assert pick_best([(5, "a"), (5, "b")]) == (5, "a")

    def test_minimize(self):
        assert pick_best([(4, "a"), (2, "b")], minimize=True) == (2, "b")

    def test_substitution(self):
        assert substitution(1, 1, 2, -3) == 2
        assert substitution(1, 2, 2, -3) == -3


class TestInits:
    def test_zero_init(self):
        scores = zero_init(2)(None, 4)
        assert scores.shape == (4, 2)
        assert (scores == 0).all()

    def test_linear_gap_init(self):
        class P:
            linear_gap = -3

        scores = linear_gap_init(1)(P(), 4)
        assert list(scores[:, 0]) == [0, -3, -6, -9]

    def test_constant_init(self):
        scores = constant_init(1, boundary=99.0, corner=0.0)(None, 3)
        assert scores[0, 0] == 0.0
        assert (scores[1:, 0] == 99.0).all()


class TestLinearFsm:
    def test_moves(self):
        assert linear_tb(MM, TB_DIAG) == (Move.MATCH, MM)
        assert linear_tb(MM, TB_UP) == (Move.DEL, MM)
        assert linear_tb(MM, TB_LEFT) == (Move.INS, MM)
        assert linear_tb(MM, TB_END) == (Move.END, MM)


class TestAffineFsm:
    def test_ptr_packing(self):
        ptr = affine_ptr(TB_LEFT, True, False)
        assert ptr == TB_LEFT | AFFINE_I_EXT
        ptr = affine_ptr(TB_UP, False, True)
        assert ptr == TB_UP | AFFINE_D_EXT

    def test_mm_diagonal(self):
        assert affine_tb(MM, affine_ptr(TB_DIAG, False, False)) == (Move.MATCH, MM)

    def test_gap_open_returns_to_mm(self):
        move, state = affine_tb(MM, affine_ptr(TB_LEFT, False, False))
        assert (move, state) == (Move.INS, MM)

    def test_gap_extend_stays_in_gap_state(self):
        move, state = affine_tb(MM, affine_ptr(TB_LEFT, True, False))
        assert (move, state) == (Move.INS, INS)
        move, state = affine_tb(INS, affine_ptr(TB_DIAG, True, False))
        assert (move, state) == (Move.INS, INS)

    def test_del_state_mirrors_ins(self):
        move, state = affine_tb(DEL, affine_ptr(TB_DIAG, False, True))
        assert (move, state) == (Move.DEL, DEL)
        move, state = affine_tb(DEL, affine_ptr(TB_DIAG, False, False))
        assert (move, state) == (Move.DEL, MM)

    def test_end(self):
        assert affine_tb(MM, affine_ptr(TB_END, False, False))[0] is Move.END

    def test_unknown_state(self):
        with pytest.raises(ValueError):
            affine_tb(9, 0)


class TestTwoPieceFsm:
    def test_ptr_distinct_sources(self):
        ptrs = {
            two_piece_ptr(src, False, False, False, False)
            for src in (TP_DIAG, TP_DEL, TP_INS, TP_LDEL, TP_LINS, TP_END)
        }
        assert len(ptrs) == 6

    def test_ptr_fits_seven_bits(self):
        ptr = two_piece_ptr(TP_END, True, True, True, True)
        assert ptr < (1 << 7)

    def test_long_gap_state(self):
        move, state = two_piece_tb(MM, two_piece_ptr(TP_LINS, False, False, True, False))
        assert (move, state) == (Move.INS, LONG_INS)
        move, state = two_piece_tb(LONG_INS, two_piece_ptr(TP_DIAG, False, False, True, False))
        assert (move, state) == (Move.INS, LONG_INS)
        move, state = two_piece_tb(LONG_INS, two_piece_ptr(TP_DIAG, False, False, False, False))
        assert (move, state) == (Move.INS, MM)

    def test_short_and_long_independent(self):
        ptr = two_piece_ptr(TP_DEL, True, False, True, False)
        move, state = two_piece_tb(MM, ptr)
        assert (move, state) == (Move.DEL, MM)  # short del, no d_ext

    def test_long_del(self):
        ptr = two_piece_ptr(TP_LDEL, False, False, False, True)
        assert two_piece_tb(MM, ptr) == (Move.DEL, LONG_DEL)
        assert two_piece_tb(LONG_DEL, ptr) == (Move.DEL, LONG_DEL)

    def test_end(self):
        assert two_piece_tb(MM, two_piece_ptr(TP_END, 0, 0, 0, 0))[0] is Move.END

    def test_unknown_state(self):
        with pytest.raises(ValueError):
            two_piece_tb(9, 0)
