"""Tests for the bulk verification campaign and its substrates."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign import run_campaign
from repro.kernels import KERNELS
from repro.reference.classic import nw_linear, sw_linear
from repro.reference.dispatch import classic_score
from repro.reference.vectorized import nw_linear_score, sw_linear_score
from tests.conftest import mutated_copy, random_dna


class TestDispatch:
    @pytest.mark.parametrize("kid", sorted(KERNELS))
    def test_every_kernel_dispatches(self, kid):
        from repro.experiments.workloads import WORKLOADS

        q, r = WORKLOADS[kid].make_pairs(1, seed=kid)[0]
        q, r = q[:20], r[:20]
        score = classic_score(kid, q, r)
        assert isinstance(score, float)

    def test_unknown_kernel(self):
        with pytest.raises(KeyError):
            classic_score(42, (0,), (0,))


class TestVectorized:
    @pytest.mark.parametrize("seed", range(6))
    def test_nw_matches_classic(self, seed):
        r = random_dna(20 + 5 * seed, seed)
        q = mutated_copy(r, seed + 50)
        assert nw_linear_score(q, r) == nw_linear(q, r)

    @pytest.mark.parametrize("seed", range(6))
    def test_sw_matches_classic(self, seed):
        r = random_dna(20 + 5 * seed, seed + 10)
        q = mutated_copy(r, seed + 60)
        assert sw_linear_score(q, r) == sw_linear(q, r)

    @given(
        q=st.lists(st.integers(0, 3), min_size=1, max_size=16),
        r=st.lists(st.integers(0, 3), min_size=1, max_size=16),
    )
    @settings(max_examples=50, deadline=None)
    def test_nw_property(self, q, r):
        assert nw_linear_score(tuple(q), tuple(r)) == nw_linear(q, r)

    @given(
        q=st.lists(st.integers(0, 3), min_size=1, max_size=16),
        r=st.lists(st.integers(0, 3), min_size=1, max_size=16),
    )
    @settings(max_examples=50, deadline=None)
    def test_sw_property(self, q, r):
        assert sw_linear_score(tuple(q), tuple(r)) == sw_linear(q, r)

    def test_asymmetric_shapes(self):
        q = random_dna(3, 1)
        r = random_dna(30, 2)
        assert nw_linear_score(q, r) == nw_linear(q, r)
        assert nw_linear_score(r, q) == nw_linear(r, q)


class TestCampaign:
    @pytest.mark.parametrize("kid", (1, 2, 5, 9, 14))
    def test_campaign_passes(self, kid):
        report = run_campaign(kid, n_pairs=4, engine_sample=1, max_length=24)
        assert report.passed, report.summary()

    def test_summary_format(self):
        report = run_campaign(3, n_pairs=2, engine_sample=1, max_length=20)
        assert "PASS" in report.summary()
        assert "local_linear" in report.summary()

    def test_invalid_pairs(self):
        with pytest.raises(ValueError):
            run_campaign(1, n_pairs=0)
