"""Properties of the chunked wavefront schedule (the systolic contract)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.systolic.schedule import chunk_schedules, count_cycles


def enumerate_cells(chunks, n_cols):
    """(i, j, pe, chunk_idx, wavefront) for every scheduled in-range cell."""
    for idx, chunk in enumerate(chunks):
        for w in chunk.wavefronts:
            for p in range(chunk.rows):
                j = w - p + 1
                if 1 <= j <= n_cols:
                    yield chunk.base + p + 1, j, p, idx, w


class TestUnbandedSchedule:
    def test_every_cell_exactly_once(self):
        n, m, n_pe = 13, 17, 4
        chunks = chunk_schedules(n, m, n_pe)
        cells = [(i, j) for i, j, *_ in enumerate_cells(chunks, m)]
        assert len(cells) == n * m
        assert len(set(cells)) == n * m

    def test_pe_owns_rows_mod_npe(self):
        chunks = chunk_schedules(20, 10, 8)
        for i, _j, p, *_ in enumerate_cells(chunks, 10):
            assert (i - 1) % 8 == p

    def test_dependencies_precede(self):
        """Each cell's up/diag/left neighbours are scheduled strictly earlier."""
        n, m, n_pe = 9, 11, 4
        chunks = chunk_schedules(n, m, n_pe)
        order = {}
        for i, j, _p, c, w in enumerate_cells(chunks, m):
            order[(i, j)] = (c, w)
        for (i, j), when in order.items():
            for ni, nj in ((i - 1, j), (i - 1, j - 1), (i, j - 1)):
                if (ni, nj) in order:
                    assert order[(ni, nj)] < when, (
                        f"cell {(i, j)} scheduled before its dependency "
                        f"{(ni, nj)}"
                    )

    def test_chunk_sizes(self):
        chunks = chunk_schedules(10, 5, 4)
        assert [c.rows for c in chunks] == [4, 4, 2]
        assert [c.base for c in chunks] == [0, 4, 8]

    def test_wavefront_count(self):
        chunks = chunk_schedules(4, 10, 4)
        assert len(chunks[0].wavefronts) == 10 + 4 - 1

    @given(
        st.integers(1, 40), st.integers(1, 40), st.integers(1, 12)
    )
    @settings(max_examples=40, deadline=None)
    def test_cell_cover_property(self, n, m, n_pe):
        chunks = chunk_schedules(n, m, n_pe)
        cells = set((i, j) for i, j, *_ in enumerate_cells(chunks, m))
        assert len(cells) == n * m


class TestBandedSchedule:
    def test_only_band_wavefronts_issued(self):
        n = m = 32
        band = 4
        full = chunk_schedules(n, m, 8)
        banded = chunk_schedules(n, m, 8, banding=band)
        assert sum(len(c.wavefronts) for c in banded) < sum(
            len(c.wavefronts) for c in full
        )

    def test_band_cells_all_covered(self):
        n = m = 24
        band = 3
        chunks = chunk_schedules(n, m, 8, banding=band)
        cells = set((i, j) for i, j, *_ in enumerate_cells(chunks, m))
        expected = {
            (i, j)
            for i in range(1, n + 1)
            for j in range(1, m + 1)
            if abs(i - j) <= band
        }
        assert expected <= cells  # band cells all scheduled

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            chunk_schedules(0, 5, 4)
        with pytest.raises(ValueError):
            chunk_schedules(5, 5, 0)


class TestCountCycles:
    def test_unbanded_closed_form(self):
        compute, load = count_cycles(16, 20, 8, ii=1)
        assert compute == 2 * (20 + 8 - 1)
        assert load == 16

    def test_ii_multiplies_compute(self):
        c1, _ = count_cycles(16, 20, 8, ii=1)
        c4, _ = count_cycles(16, 20, 8, ii=4)
        assert c4 == 4 * c1

    def test_banding_reduces_compute(self):
        full, _ = count_cycles(64, 64, 16)
        banded, _ = count_cycles(64, 64, 16, banding=8)
        assert banded < full
