"""Tests for the device pool (routing, linked-design deployment)."""

import pytest

from repro.host import DeviceRuntime
from repro.kernels import get_kernel
from repro.service.pool import DevicePool, PoolRejection
from repro.synth import LaunchConfig
from repro.synth.linker import ChannelSpec, link
from tests.conftest import mutated_copy, random_dna


def small_config(**overrides):
    base = dict(n_pe=8, n_b=2, n_k=1, max_query_len=64, max_ref_len=64)
    base.update(overrides)
    return LaunchConfig(**base)


def make_pairs(n, length=24):
    out = []
    for k in range(n):
        ref = random_dna(length, seed=300 + k)
        out.append((mutated_copy(ref, 400 + k)[:length], ref))
    return out


class TestConstruction:
    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            DevicePool([])

    def test_invalid_workers(self):
        runtime = DeviceRuntime(get_kernel(1), small_config())
        with pytest.raises(ValueError):
            DevicePool([runtime], workers=0)

    def test_kernel_index(self):
        pool = DevicePool([
            DeviceRuntime(get_kernel(1), small_config()),
            DeviceRuntime(get_kernel(3), small_config()),
            DeviceRuntime(get_kernel(1), small_config()),
        ])
        assert pool.kernel_ids() == [1, 3]
        assert pool.supports(1) and pool.supports(3)
        assert not pool.supports(9)

    def test_max_lengths(self):
        pool = DevicePool([
            DeviceRuntime(get_kernel(1), small_config(max_query_len=32,
                                                      max_ref_len=32)),
            DeviceRuntime(get_kernel(1), small_config()),
        ])
        assert pool.max_lengths(1) == (64, 64)
        with pytest.raises(PoolRejection):
            pool.max_lengths(9)


class TestExecution:
    def test_results_match_direct_run(self):
        runtime = DeviceRuntime(get_kernel(1), small_config())
        pool = DevicePool([runtime])
        pairs = make_pairs(5)
        outcome, member = pool.execute(1, pairs)
        assert not outcome.errors
        expected_results = runtime.run(pairs).results
        for expected, result in zip(expected_results, outcome.results):
            assert result.score == expected.score
            assert result.cigar == expected.cigar
        assert member.pairs_served == 5
        assert member.in_flight == 0

    def test_unknown_kernel_rejected(self):
        pool = DevicePool([DeviceRuntime(get_kernel(1), small_config())])
        with pytest.raises(PoolRejection, match="no runtime"):
            pool.execute(9, make_pairs(1))

    def test_per_pair_failures_isolated(self):
        pool = DevicePool([DeviceRuntime(get_kernel(1), small_config())])
        good = make_pairs(1)[0]
        overlong = make_pairs(1, length=100)[0]  # beyond max_query_len
        outcome, _member = pool.execute(1, [good, overlong])
        assert outcome.results[0] is not None
        assert outcome.results[1] is None
        assert [e.index for e in outcome.errors] == [1]

    def test_least_loaded_routing_spreads_replicas(self):
        pool = DevicePool([
            DeviceRuntime(get_kernel(1), small_config()),
            DeviceRuntime(get_kernel(1), small_config()),
        ])
        served = set()
        for _ in range(4):
            _outcome, member = pool.execute(1, make_pairs(2))
            served.add(member.name)
        # With zero in-flight load between calls the (in_flight, name)
        # key always picks rt0 first; after it books/releases the next
        # identical call ties again — equal-load ties go to the stable
        # name order, so rt0 serves everything serially.  Under load the
        # booking shows: acquire twice without releasing.
        first = pool._acquire(1, 10)
        second = pool._acquire(1, 1)
        assert first is not second
        pool._release(first, 10)
        pool._release(second, 1)
        assert served  # the serial calls all succeeded

    def test_stats_shape(self):
        pool = DevicePool([DeviceRuntime(get_kernel(1), small_config())])
        pool.execute(1, make_pairs(3))
        (stats,) = pool.stats()
        assert stats["kernel_id"] == 1
        assert stats["pairs_served"] == 3
        assert stats["batches_served"] == 1
        assert stats["in_flight"] == 0


class TestLinkedDesignDeployment:
    def test_heterogeneous_design_becomes_pool(self):
        design = link([
            ChannelSpec(kernel=get_kernel(1), n_pe=8, n_b=2,
                        max_query_len=64, max_ref_len=64),
            ChannelSpec(kernel=get_kernel(3), n_pe=8, n_b=2,
                        max_query_len=64, max_ref_len=64),
        ])
        pool = DevicePool.from_linked_design(design)
        assert pool.kernel_ids() == [1, 3]
        assert len(pool.members) == 2
        for channel, member in zip(design.channels, pool.members):
            assert member.runtime.config.n_pe == channel.n_pe
            assert member.runtime.config.n_b == channel.n_b
        outcome, _member = pool.execute(3, make_pairs(2))
        assert not outcome.errors


class TestMembership:
    """Online add/retire: the autoscale actuator's substrate."""

    def _pool(self, n=2):
        return DevicePool([
            DeviceRuntime(get_kernel(1), small_config()) for _ in range(n)
        ])

    def test_add_member_joins_routing(self):
        pool = self._pool(1)
        member = pool.add_member(
            DeviceRuntime(get_kernel(1), small_config())
        )
        assert member in pool.active_members(1)
        assert pool.replica_counts() == {1: 2}
        outcome, _ = pool.execute(1, make_pairs(2))
        assert outcome.errors == []

    def test_add_member_names_are_unique(self):
        pool = self._pool(1)
        first = pool.add_member(
            DeviceRuntime(get_kernel(1), small_config())
        )
        second = pool.add_member(
            DeviceRuntime(get_kernel(1), small_config())
        )
        assert first.name != second.name
        with pytest.raises(ValueError):
            pool.add_member(
                DeviceRuntime(get_kernel(1), small_config()),
                name=first.name,
            )

    def test_retire_member_removes_idle(self):
        pool = self._pool(2)
        victim = pool.active_members(1)[-1]
        retired = pool.retire_member(victim.name)
        assert retired is victim
        assert pool.replica_counts() == {1: 1}
        assert victim not in pool.members

    def test_retire_unknown_raises(self):
        pool = self._pool(1)
        with pytest.raises(KeyError):
            pool.retire_member("nope")

    def test_retire_last_member_refused(self):
        pool = self._pool(1)
        only = pool.members[0]
        with pytest.raises(ValueError):
            pool.retire_member(only.name)
        retired = pool.retire_member(only.name, allow_last=True)
        assert retired is only
        assert not pool.supports(1)

    def test_retire_waits_for_in_flight_work(self):
        import threading
        import time as time_module

        pool = self._pool(2)
        busy = pool._acquire(1, 3)  # book load as execute() would
        done = threading.Event()

        def retire():
            pool.retire_member(busy.name, timeout_s=10.0)
            done.set()

        thread = threading.Thread(target=retire, daemon=True)
        thread.start()
        time_module.sleep(0.1)
        # The drain is still blocked on the booked load, but the member
        # already left the routing table.
        assert not done.is_set()
        assert busy not in pool.active_members(1)
        pool._release(busy, 3)
        thread.join(5.0)
        assert done.is_set()
        assert busy not in pool.members

    def test_retire_timeout_leaves_member_draining(self):
        pool = self._pool(2)
        busy = pool._acquire(1, 1)
        with pytest.raises(TimeoutError):
            pool.retire_member(busy.name, timeout_s=0.05)
        assert busy.draining
        assert busy in pool.members
        assert busy not in pool.active_members(1)
        pool._release(busy, 1)
        retired = pool.retire_member(busy.name, timeout_s=5.0)
        assert retired is busy
        assert busy not in pool.members
