"""Tests for JSON export and the combined reproduction summary."""

import json

import pytest

from repro.experiments.summary import reproduce_all
from repro.kernels import get_kernel
from repro.synth import LaunchConfig, synthesize
from repro.synth.export import (
    linked_design_to_dict,
    report_to_dict,
    report_to_json,
)
from repro.synth.linker import ChannelSpec, link


class TestReportExport:
    @pytest.fixture(scope="class")
    def report(self):
        return synthesize(get_kernel(2), LaunchConfig(n_pe=16, n_b=2, n_k=2))

    def test_dict_fields(self, report):
        d = report_to_dict(report)
        assert d["kernel"] == "global_affine"
        assert d["config"]["n_pe"] == 16
        assert d["feasible"] is True
        assert d["total"]["lut"] == pytest.approx(4 * d["block"]["lut"])
        assert set(d["utilization_pct"]) == {"lut", "ff", "bram", "dsp"}

    def test_json_roundtrip(self, report):
        text = report_to_json(report)
        back = json.loads(text)
        assert back["alignments_per_sec"] == pytest.approx(
            report.alignments_per_sec
        )

    def test_json_is_plain_types(self, report):
        # json.dumps raises on non-serialisable leftovers
        json.dumps(report_to_dict(report))


class TestLinkedExport:
    def test_linked_design_dict(self):
        design = link(
            [ChannelSpec(get_kernel(1), n_b=2), ChannelSpec(get_kernel(3))]
        )
        d = linked_design_to_dict(design)
        assert len(d["channels"]) == 2
        assert d["total_alignments_per_sec"] == pytest.approx(
            sum(c["alignments_per_sec"] for c in d["channels"])
        )
        json.dumps(d)


class TestSummary:
    @pytest.fixture(scope="class")
    def summary(self):
        return reproduce_all(include_tiling=False)

    def test_all_sections_present(self, summary):
        assert set(summary.sections) == {
            "table1_taxonomy", "table2_kernels",
            "fig3_scaling_kernel1", "fig3_scaling_kernel9",
            "fig4_rtl_baselines", "fig5_gact_scaling",
            "fig6_sw_baselines", "sec7_5_hls_baseline",
        }

    def test_render_contains_headlines(self, summary):
        text = summary.render()
        assert "Table 2" in text
        assert "GACT" in text
        assert "SeqAn3" in text

    def test_cli_all_command(self, capsys):
        from repro.cli import main

        assert main(["all"]) == 0
        assert "full experiment summary" in capsys.readouterr().out
