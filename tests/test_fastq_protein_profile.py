"""Tests for FASTQ support and the protein profile kernel."""

import numpy as np
import pytest

from repro.data.fastq import (
    FastqRecord,
    decode_qualities,
    encode_qualities,
    read_fastq,
    simulate_fastq,
    write_fastq,
)
from repro.kernels.extensions import (
    N_PROTEIN_CHANNELS,
    PROFILE_PROTEIN,
    default_protein_sop,
)
from repro.reference import oracle_align
from repro.reference.classic import profile_global
from repro.systolic import align


class TestQualityEncoding:
    def test_roundtrip(self):
        phred = (2, 10, 33, 60)
        assert decode_qualities(encode_qualities(phred)) == phred

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            encode_qualities((61,))
        with pytest.raises(ValueError):
            encode_qualities((-1,))


class TestFastqIo:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "reads.fq"
        records = [
            FastqRecord("r1", "ACGT", (30, 30, 20, 10)),
            FastqRecord("r2", "GG", (40, 2)),
        ]
        write_fastq(path, records)
        assert read_fastq(path) == records

    def test_length_mismatch_on_write(self, tmp_path):
        with pytest.raises(ValueError):
            write_fastq(tmp_path / "x.fq", [FastqRecord("r", "ACGT", (30,))])

    def test_malformed_header(self, tmp_path):
        path = tmp_path / "bad.fq"
        path.write_text("r1\nACGT\n+\nIIII\n")
        with pytest.raises(ValueError, match="@"):
            read_fastq(path)

    def test_truncated_file(self, tmp_path):
        path = tmp_path / "bad.fq"
        path.write_text("@r1\nACGT\n+\n")
        with pytest.raises(ValueError, match="truncated"):
            read_fastq(path)


class TestSimulateFastq:
    def test_record_shape(self):
        records = simulate_fastq(4, length=50, seed=1)
        assert len(records) == 4
        for record in records:
            assert len(record.sequence) == len(record.qualities)
            assert set(record.sequence) <= set("ACGT")

    def test_quality_tracks_error_rate(self):
        noisy = simulate_fastq(5, length=80, error_rate=0.3, seed=2)
        clean = simulate_fastq(5, length=80, error_rate=0.01, seed=2)
        mean_noisy = np.mean([r.mean_quality for r in noisy])
        mean_clean = np.mean([r.mean_quality for r in clean])
        assert mean_clean > mean_noisy + 5

    def test_invalid_error_rate(self):
        with pytest.raises(ValueError):
            simulate_fastq(1, error_rate=0.0)


def one_hot_protein_profile(sequence):
    """Each column: frequency 1.0 on the residue channel."""
    columns = []
    for residue in sequence:
        col = [0.0] * N_PROTEIN_CHANNELS
        col[residue] = 1.0
        columns.append(tuple(col))
    return tuple(columns)


class TestProteinProfileKernel:
    def test_matrix_shape(self):
        sop = default_protein_sop()
        assert len(sop) == 21 and all(len(row) == 21 for row in sop)
        m = np.asarray(sop)
        assert (m == m.T).all()

    def test_engine_matches_oracle(self):
        from repro.data.protein import mutate_protein, random_protein

        ref = one_hot_protein_profile(random_protein(10, seed=1))
        qry = one_hot_protein_profile(
            mutate_protein(random_protein(10, seed=1), seed=2)[:10]
        )
        ours = align(PROFILE_PROTEIN, qry, ref, n_pe=3)
        oracle = oracle_align(PROFILE_PROTEIN, qry, ref)
        assert np.isclose(ours.score, oracle.score)
        assert ours.alignment.moves == oracle.alignment.moves

    def test_one_hot_profiles_reduce_to_blosum(self):
        """Aligning one-hot profiles equals plain BLOSUM62 global scoring."""
        from repro.data.protein import random_protein

        seq = random_protein(8, seed=3)
        profile = one_hot_protein_profile(seq)
        result = align(PROFILE_PROTEIN, profile, profile, n_pe=2)
        from repro.data.blosum import BLOSUM62

        assert np.isclose(
            result.score, sum(BLOSUM62[a][a] for a in seq), atol=1e-2
        )

    def test_matches_classic_profile_global(self):
        from repro.data.protein import random_protein

        a = one_hot_protein_profile(random_protein(7, seed=4))
        b = one_hot_protein_profile(random_protein(7, seed=5))
        ours = align(PROFILE_PROTEIN, a, b, n_pe=2).score
        expected = profile_global(
            a, b, default_protein_sop(),
            gap=PROFILE_PROTEIN.default_params.linear_gap,
        )
        assert np.isclose(ours, expected, atol=1e-2)

    def test_dsp_appetite_scales_with_channels(self):
        """21-channel profiles need ~(21^2+21) multipliers per PE."""
        from repro.core.trace import OpKind

        graph = PROFILE_PROTEIN.trace_datapath()
        assert graph.count(OpKind.MUL) == 21 * 21 + 21
