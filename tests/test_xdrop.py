"""Tests for X-Drop adaptive-banded extension."""

import pytest

from repro.pruning import xdrop_extend
from repro.reference.classic import nw_linear
from tests.conftest import mutated_copy, random_dna


class TestBasics:
    def test_identical_sequences_full_extension(self):
        seq = random_dna(30, seed=1)
        result = xdrop_extend(seq, seq, match=2, mismatch=-3, gap=-3)
        assert result.score == 2 * len(seq)
        assert result.end == (len(seq), len(seq))

    def test_empty_inputs(self):
        result = xdrop_extend((), (0, 1))
        assert result.score == 0.0
        assert result.cells_computed == 0

    def test_invalid_xdrop(self):
        with pytest.raises(ValueError):
            xdrop_extend((0,), (0,), x_drop=0)

    def test_extension_stops_in_junk(self):
        """A good prefix followed by unrelated tails: extension must stop
        near the end of the shared prefix rather than sweep the matrix."""
        shared = random_dna(20, seed=2)
        query = shared + random_dna(60, seed=3)
        reference = shared + random_dna(60, seed=4)
        result = xdrop_extend(query, reference, x_drop=12.0)
        assert result.score >= 2 * len(shared) - 8
        assert result.end[0] <= len(shared) + 20


class TestAgainstFullDP:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_global_dp_on_similar_sequences(self, seed):
        """With a generous X, the extension score of similar sequences
        equals the best global-prefix score of the full DP."""
        ref = random_dna(30, seed=seed + 10)
        qry = mutated_copy(ref, seed + 50, error_rate=0.1)
        result = xdrop_extend(qry, ref, x_drop=1000.0)
        # Best prefix-vs-prefix score over all prefix pairs:
        best = max(
            nw_linear(qry[:i], ref[:j], match=2, mismatch=-3, gap=-3)
            for i in range(1, len(qry) + 1)
            for j in range(1, len(ref) + 1)
        )
        assert result.score == best

    def test_larger_x_never_worse(self):
        ref = random_dna(40, seed=20)
        qry = mutated_copy(ref, 21, error_rate=0.25)
        loose = xdrop_extend(qry, ref, x_drop=100.0)
        tight = xdrop_extend(qry, ref, x_drop=5.0)
        assert loose.score >= tight.score
        assert loose.cells_computed >= tight.cells_computed


class TestAdaptiveBand:
    def test_band_adapts_to_quality(self):
        """Dissimilar sequences keep the live band narrow; similar ones
        keep it alive across the whole matrix."""
        ref = random_dna(40, seed=30)
        similar = mutated_copy(ref, 31, error_rate=0.05)
        unrelated = random_dna(40, seed=32)
        good = xdrop_extend(similar, ref, x_drop=10.0)
        bad = xdrop_extend(unrelated, ref, x_drop=10.0)
        # the good extension survives to the far corner; the bad one dies
        assert len(good.band_widths) > len(bad.band_widths)
        assert good.end[0] + good.end[1] > bad.end[0] + bad.end[1]
        assert good.score > bad.score

    def test_prunes_most_of_matrix(self):
        ref = random_dna(60, seed=33)
        qry = mutated_copy(ref, 34, error_rate=0.1)
        result = xdrop_extend(qry, ref, x_drop=10.0)
        assert result.cells_computed < 0.5 * len(ref) * len(qry)

    def test_max_band_reported(self):
        ref = random_dna(30, seed=35)
        result = xdrop_extend(ref, ref, x_drop=10.0)
        assert result.max_band == max(result.band_widths)
