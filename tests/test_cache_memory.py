"""MemoryCache: strict byte-bounded LRU semantics (repro.cache.memory).

Pins the tier's three contracts: eviction is strict LRU over *both*
gets and puts, the byte budget is a hard invariant after every
operation, and every mutation is visible in the stats counters.
"""

import threading

import pytest

from repro.cache.memory import MemoryCache


class TestLRUOrder:
    def test_interleaved_get_put_eviction_order(self):
        """A get refreshes recency, so the un-got key evicts first."""
        cache = MemoryCache(max_bytes=30)
        cache.put("a", "A", 10)
        cache.put("b", "B", 10)
        cache.put("c", "C", 10)
        assert cache.keys() == ["a", "b", "c"]
        # Touch "a": now "b" is coldest.
        assert cache.get("a") == "A"
        assert cache.keys() == ["b", "c", "a"]
        cache.put("d", "D", 10)  # evicts exactly "b"
        assert cache.keys() == ["c", "a", "d"]
        assert cache.get("b") is None
        assert cache.get("a") == "A"
        assert cache.stats().evictions == 1

    def test_re_put_refreshes_recency_and_charge(self):
        cache = MemoryCache(max_bytes=30)
        cache.put("a", "A", 10)
        cache.put("b", "B", 10)
        cache.put("a", "A2", 15)  # replace: now 25 bytes, "b" coldest
        assert cache.bytes_used == 25
        assert cache.keys() == ["b", "a"]
        cache.put("c", "C", 10)  # 35 > 30: evict "b" only
        assert cache.keys() == ["a", "c"]
        assert cache.get("a") == "A2"

    def test_eviction_cascades_until_budget_holds(self):
        cache = MemoryCache(max_bytes=30)
        for name in "abc":
            cache.put(name, name, 10)
        cache.put("z", "Z", 25)  # must evict a, b and c
        assert cache.keys() == ["z"]
        assert cache.stats().evictions == 3


class TestByteBudget:
    def test_budget_is_invariant_after_every_put(self):
        cache = MemoryCache(max_bytes=100)
        for k in range(50):
            cache.put(f"k{k}", k, 17)
            assert cache.bytes_used <= 100
        stats = cache.stats()
        assert stats.entries == len(cache)
        assert stats.bytes_used == cache.bytes_used
        assert stats.puts == 50
        assert stats.evictions == 50 - stats.entries

    def test_oversize_entry_rejected_not_stored(self):
        """One unstorable value must not flush the whole cache."""
        cache = MemoryCache(max_bytes=20)
        cache.put("a", "A", 10)
        assert cache.put("big", "B", 21) is False
        assert "big" not in cache
        assert cache.get("a") == "A"
        assert cache.stats().oversize_rejections == 1

    def test_zero_byte_entries_allowed(self):
        cache = MemoryCache(max_bytes=10)
        assert cache.put("empty", "E", 0) is True
        assert cache.get("empty") == "E"

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError, match="nbytes"):
            MemoryCache(max_bytes=10).put("k", "v", -1)

    def test_bad_budget_rejected(self):
        with pytest.raises(ValueError, match="max_bytes"):
            MemoryCache(max_bytes=0)


class TestAccounting:
    def test_hits_misses_and_contains(self):
        cache = MemoryCache(max_bytes=100)
        cache.put("a", "A", 1)
        cache.get("a")
        cache.get("nope")
        assert "a" in cache  # __contains__ must not touch counters
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.hit_rate == 0.5

    def test_delete_and_clear_release_bytes(self):
        cache = MemoryCache(max_bytes=100)
        cache.put("a", "A", 40)
        cache.put("b", "B", 40)
        assert cache.delete("a") is True
        assert cache.delete("a") is False
        assert cache.bytes_used == 40
        cache.clear()
        assert cache.bytes_used == 0
        assert len(cache) == 0

    def test_thread_safety_under_contention(self):
        """Concurrent put/get storms must keep the budget invariant."""
        cache = MemoryCache(max_bytes=500)

        def worker(base):
            for k in range(200):
                cache.put(f"{base}-{k % 20}", k, 13)
                cache.get(f"{base}-{(k + 7) % 20}")

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert cache.bytes_used <= 500
        assert cache.bytes_used == 13 * len(cache)
