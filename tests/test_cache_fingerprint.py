"""Fingerprint determinism and sensitivity (repro.cache.fingerprint).

The cache is only sound if fingerprints are a pure, stable function of
everything a result depends on — stable across processes and restarts
(the persistent tier outlives the process that wrote it) and sensitive
to every input that changes the engine's output.
"""

import os
import pathlib
import subprocess
import sys

import numpy as np
import pytest

from repro.cache.fingerprint import (
    FINGERPRINT_VERSION,
    canonical,
    canonical_json,
    fingerprint,
    pair_fingerprint,
    runtime_fingerprint,
    sequence_blob,
)
from repro.host import DeviceRuntime
from repro.kernels import get_kernel
from repro.kernels.global_linear import ScoringParams
from repro.synth import LaunchConfig


def _runtime_key(kernel_id=1, params=None, n_pe=8, max_len=64):
    runtime = DeviceRuntime(
        get_kernel(kernel_id),
        LaunchConfig(n_pe=n_pe, n_b=2, n_k=1,
                     max_query_len=max_len, max_ref_len=max_len),
        params=params,
    )
    return runtime_fingerprint(
        runtime.spec, runtime.params, runtime.config.n_pe,
        runtime.report.ii, runtime.config.max_query_len,
        runtime.config.max_ref_len,
    )


class TestCanonical:
    def test_scalars_pass_through(self):
        assert canonical(None) is None
        assert canonical(True) is True
        assert canonical(7) == 7
        assert canonical("x") == "x"

    def test_float_tagged_distinct_from_int(self):
        """2 and 2.0 compare equal in Python; their keys must differ."""
        assert canonical(2) != canonical(2.0)
        assert canonical_json({"a": 2}) != canonical_json({"a": 2.0})

    def test_float_repr_roundtrips(self):
        assert canonical(0.1) == f"f:{0.1!r}"

    def test_numpy_scalars_and_arrays(self):
        assert canonical(np.int64(5)) == 5
        assert canonical(np.float64(1.5)) == canonical(1.5)
        enc = canonical(np.array([[1, 2], [3, 4]], dtype=np.int32))
        assert enc == {"__ndarray__": "int32", "data": [[1, 2], [3, 4]]}

    def test_dict_key_order_irrelevant(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json(
            {"a": 2, "b": 1}
        )

    def test_tuple_and_list_equivalent(self):
        assert canonical((1, 2)) == canonical([1, 2])

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError, match="canonicalize"):
            canonical(object())

    def test_sequence_blob_int_fastpath(self):
        assert sequence_blob((0, 1, 2, 3)) == "0,1,2,3"
        assert sequence_blob(np.array([0, 1], dtype=np.uint8)) == "0,1"

    def test_sequence_blob_fallback(self):
        assert sequence_blob(["A", "C"]) == canonical_json(["A", "C"])


class TestDeterminism:
    def test_same_inputs_same_key(self):
        assert _runtime_key() == _runtime_key()

    def test_pair_key_stable(self):
        key = _runtime_key()
        q, r = (0, 1, 2, 3), (3, 2, 1, 0)
        assert pair_fingerprint(key, q, r) == pair_fingerprint(key, q, r)

    def test_cross_process_determinism(self):
        """The fingerprint survives a process boundary byte-for-byte.

        A fresh interpreter (fresh hash randomization, fresh module
        state) must produce the same hex digest — that is what lets a
        restarted server trust a cache directory written by its
        predecessor.
        """
        program = (
            "from tests.test_cache_fingerprint import _runtime_key\n"
            "from repro.cache.fingerprint import pair_fingerprint\n"
            "key = _runtime_key()\n"
            "print(pair_fingerprint(key, (0, 1, 2), (2, 1, 0)))\n"
        )
        root = pathlib.Path(__file__).resolve().parents[1]
        out = subprocess.run(
            [sys.executable, "-c", program],
            capture_output=True, text=True, check=True, cwd=str(root),
            env={**os.environ, "PYTHONPATH": str(root / "src")},
        )
        here = pair_fingerprint(_runtime_key(), (0, 1, 2), (2, 1, 0))
        assert out.stdout.strip() == here


class TestSensitivity:
    def test_kernel_changes_key(self):
        assert _runtime_key(kernel_id=1) != _runtime_key(kernel_id=3)

    def test_params_change_key(self):
        harsh = ScoringParams(match=1, mismatch=-9, linear_gap=-9)
        assert _runtime_key(params=harsh) != _runtime_key()

    def test_launch_sizing_changes_key(self):
        """n_pe moves cycle counts, so it must move the key."""
        assert _runtime_key(n_pe=8) != _runtime_key(n_pe=16)
        assert _runtime_key(max_len=64) != _runtime_key(max_len=128)

    def test_sequences_change_key(self):
        key = _runtime_key()
        base = pair_fingerprint(key, (0, 1), (2, 3))
        assert pair_fingerprint(key, (0, 2), (2, 3)) != base
        assert pair_fingerprint(key, (0, 1), (2, 2)) != base

    def test_query_reference_boundary_unambiguous(self):
        """Moving a symbol across the query/ref boundary changes the key."""
        key = _runtime_key()
        assert pair_fingerprint(key, (0, 1), (2,)) != pair_fingerprint(
            key, (0,), (1, 2)
        )

    def test_version_constant_feeds_key(self):
        """FINGERPRINT_VERSION is part of the surface (the invalidation
        lever for semantics changes the spec surface cannot see)."""
        assert FINGERPRINT_VERSION >= 1
        assert fingerprint({"version": FINGERPRINT_VERSION}) != fingerprint(
            {"version": FINGERPRINT_VERSION + 1}
        )
