"""Tests for the synthesis models: device, resources, timing, compiler."""

import pytest

from repro.core.trace import OpKind
from repro.kernels import KERNELS, get_kernel
from repro.synth import LaunchConfig, estimate_resources, synthesize
from repro.synth.compiler import max_parallel_blocks
from repro.synth.device import FREQUENCY_GRID_MHZ, XCVU9P, FpgaDevice
from repro.synth.resources import bram18_units, dsp_for_multiplier
from repro.synth.timing import estimate_fmax_mhz, estimate_ii, snap_to_grid


class TestDevice:
    def test_totals(self):
        assert XCVU9P.total("lut") == 1_182_240
        assert XCVU9P.total("dsp") == 6_840

    def test_usable_headroom(self):
        assert XCVU9P.usable("bram") == pytest.approx(2160 * 0.92)
        assert XCVU9P.usable("lut") == pytest.approx(1_182_240 * 0.98)

    def test_utilization_pct(self):
        assert XCVU9P.utilization_pct("dsp", 68.4) == pytest.approx(1.0)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            XCVU9P.total("uram")


class TestBramSizing:
    @pytest.mark.parametrize(
        "depth,width,units",
        [
            (512, 36, 1), (1024, 18, 1), (16384, 1, 1),
            (8192, 2, 1), (2296, 2, 1),        # kernel #1 TB bank
            (2296, 7, 2),                       # kernel #5 TB bank
            (1024, 36, 2), (512, 72, 2), (4096, 4, 1),
        ],
    )
    def test_bram18_units(self, depth, width, units):
        assert bram18_units(depth, width) == units

    def test_invalid(self):
        with pytest.raises(ValueError):
            bram18_units(0, 4)


class TestDspSizing:
    @pytest.mark.parametrize(
        "wa,wb,dsps",
        [(16, 16, 1), (18, 27, 1), (24, 24, 2), (32, 16, 2), (32, 32, 4),
         (24, 16, 1)],
    )
    def test_dsp_for_multiplier(self, wa, wb, dsps):
        assert dsp_for_multiplier(wa, wb) == dsps

    def test_invalid(self):
        with pytest.raises(ValueError):
            dsp_for_multiplier(0, 4)


class TestResourceModel:
    def test_logic_scales_linearly_with_npe(self):
        spec = get_kernel(1)
        r16 = estimate_resources(spec, 16)
        r32 = estimate_resources(spec, 32)
        # per-PE logic dominates; doubling PEs ~doubles LUT minus block const
        assert 1.7 < (r32.luts / r16.luts) < 2.1

    def test_blocks_scale_exactly(self):
        spec = get_kernel(1)
        block = estimate_resources(spec, 32)
        assert block.scaled(4).luts == pytest.approx(4 * block.luts)

    def test_multiplier_kernels_use_dsp(self):
        dsp_light = estimate_resources(get_kernel(1), 32).dsps
        dsp_heavy = estimate_resources(get_kernel(8), 32).dsps
        assert dsp_heavy > 100 * dsp_light

    def test_traceback_drives_bram(self):
        with_tb = estimate_resources(get_kernel(4), 32).bram36
        without = estimate_resources(get_kernel(12), 32).bram36
        assert with_tb > 2 * without

    def test_two_piece_pointer_width_costs_bram(self):
        narrow = estimate_resources(get_kernel(1), 32).bram36   # 2-bit ptrs
        wide = estimate_resources(get_kernel(5), 32).bram36     # 7-bit ptrs
        assert wide > narrow

    def test_protein_rom_replicated_in_bram(self):
        protein = estimate_resources(get_kernel(15), 32).bram36
        dna = estimate_resources(get_kernel(3), 32).bram36
        assert protein > dna

    def test_lutram_conversion_at_npe64(self):
        spec = get_kernel(1)
        r32 = estimate_resources(spec, 32)
        r64 = estimate_resources(spec, 64)
        assert r64.bram36 < r32.bram36  # the Fig. 3 dip

    def test_scaled_validation(self):
        with pytest.raises(ValueError):
            estimate_resources(get_kernel(1), 32).scaled(0)


class TestTimingModel:
    def test_ii_one_without_multipliers(self):
        assert estimate_ii(get_kernel(1)) == 1
        assert estimate_ii(get_kernel(5)) == 1
        assert estimate_ii(get_kernel(10)) == 1

    def test_ii_four_with_multipliers(self):
        assert estimate_ii(get_kernel(8)) == 4
        assert estimate_ii(get_kernel(9)) == 4

    def test_calibrated_fmax_matches_table2(self):
        from repro.experiments.paper_values import TABLE2

        for kid, spec in KERNELS.items():
            assert estimate_fmax_mhz(spec) == TABLE2[kid].fmax_mhz

    def test_structural_fmax_on_grid(self):
        for spec in KERNELS.values():
            fmax = estimate_fmax_mhz(spec, use_calibration=False)
            assert fmax in FREQUENCY_GRID_MHZ

    def test_structural_fmax_orders_by_complexity(self):
        simple = estimate_fmax_mhz(get_kernel(1), use_calibration=False)
        complex_ = estimate_fmax_mhz(get_kernel(13), use_calibration=False)
        assert simple > complex_

    def test_snap_to_grid(self):
        assert snap_to_grid(240.0) == 250.0
        assert snap_to_grid(130.0) == 125.0


class TestCompiler:
    def test_report_fields(self):
        report = synthesize(get_kernel(2), LaunchConfig(n_pe=16, n_b=2, n_k=2))
        assert report.kernel_id == 2
        assert report.total.luts == pytest.approx(4 * report.block.luts)
        assert report.alignments_per_sec > 0
        assert report.feasible

    def test_summary_renders(self):
        text = synthesize(get_kernel(1)).summary()
        assert "Fmax" in text and "throughput" in text

    def test_infeasible_detected(self):
        report = synthesize(get_kernel(8), LaunchConfig(n_pe=32, n_b=8, n_k=8))
        assert not report.feasible
        assert "dsp" in report.overflows()

    def test_target_frequency_caps_fmax(self):
        report = synthesize(get_kernel(1), LaunchConfig(target_mhz=125.0))
        assert report.fmax_mhz == 125.0

    def test_launch_config_validation(self):
        with pytest.raises(ValueError):
            LaunchConfig(n_pe=0)
        with pytest.raises(ValueError):
            LaunchConfig(max_query_len=0)
        with pytest.raises(ValueError):
            LaunchConfig(target_mhz=-1)

    def test_max_parallel_blocks_dtw_dsp_limited(self):
        cap = max_parallel_blocks(get_kernel(9), 64)
        assert 15 <= cap <= 30  # the paper observes 24

    def test_published_optimal_configs_all_feasible(self):
        """The paper deployed every Table 2 configuration on the F1; the
        model must agree they fit the device."""
        from repro.experiments.workloads import WORKLOADS
        from repro.synth.calibration import OPTIMAL_CONFIG

        for kid, (n_pe, n_b, n_k) in OPTIMAL_CONFIG.items():
            w = WORKLOADS[kid]
            report = synthesize(
                get_kernel(kid),
                LaunchConfig(
                    n_pe=n_pe, n_b=n_b, n_k=n_k,
                    max_query_len=w.max_query_len, max_ref_len=w.max_ref_len,
                ),
            )
            assert report.feasible, f"kernel #{kid}: {report.overflows()}"

    def test_max_parallel_blocks_monotone_in_npe(self):
        small = max_parallel_blocks(get_kernel(1), 8)
        large = max_parallel_blocks(get_kernel(1), 64)
        assert small > large

    def test_custom_device(self):
        tiny = FpgaDevice("tiny", luts=10_000, ffs=20_000, bram36=20, dsps=10)
        report = synthesize(get_kernel(1), LaunchConfig(n_pe=32), device=tiny)
        assert not report.feasible


class TestTraceConsistency:
    """The resource model consumes the same graph the timing model does."""

    def test_rom_kernels_detected(self):
        assert get_kernel(15).trace_datapath().count(OpKind.ROM) > 0
        assert get_kernel(1).trace_datapath().count(OpKind.ROM) == 0

    def test_profile_multiplier_count(self):
        graph = get_kernel(8).trace_datapath()
        assert graph.count(OpKind.MUL) == 30  # 25 + 5 (two mat-vec products)
