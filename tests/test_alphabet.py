"""Tests for alphabets and symbol encodings."""

import pytest

from repro.core.alphabet import (
    COMPLEX_SIGNAL,
    DNA,
    DNA_WITH_GAP,
    INT_SIGNAL,
    PROFILE_DNA,
    PROTEIN,
    STANDARD_ALPHABETS,
    decode_dna,
    decode_protein,
    encode_dna,
    encode_protein,
)
from repro.core.trace import DatapathGraph, TracedValue


class TestEncodings:
    def test_dna_roundtrip(self):
        seq = "ACGTACGT"
        assert decode_dna(encode_dna(seq)) == seq

    def test_dna_lowercase(self):
        assert encode_dna("acgt") == (0, 1, 2, 3)

    def test_rna_u_maps_to_t(self):
        assert encode_dna("U") == (3,)

    def test_dna_invalid(self):
        with pytest.raises(ValueError):
            encode_dna("ACGN")

    def test_protein_roundtrip(self):
        seq = "ARNDCQEGHILKMFPSTWYV"
        assert decode_protein(encode_protein(seq)) == seq

    def test_protein_invalid(self):
        with pytest.raises(ValueError):
            encode_protein("B")


class TestAlphabetDescriptors:
    def test_dna_is_scalar(self):
        assert not DNA.is_struct
        assert DNA.size == 4
        assert DNA.storage_bits == 2

    def test_profile_is_struct(self):
        assert PROFILE_DNA.is_struct
        assert len(PROFILE_DNA.fields) == 5

    def test_complex_fields(self):
        names = [n for n, _ in COMPLEX_SIGNAL.fields]
        assert names == ["re", "im"]

    def test_traced_scalar_symbol(self):
        g = DatapathGraph()
        sym = DNA.traced_symbol(g)
        assert isinstance(sym, TracedValue)
        assert sym.width == 2

    def test_traced_struct_symbol(self):
        g = DatapathGraph()
        sym = COMPLEX_SIGNAL.traced_symbol(g)
        assert isinstance(sym, tuple) and len(sym) == 2
        assert all(isinstance(f, TracedValue) for f in sym)
        assert sym[0].width == 24

    def test_validate_scalar(self):
        assert DNA.validate_symbol(3)
        assert not DNA.validate_symbol(4)
        assert not DNA.validate_symbol("A")

    def test_validate_struct(self):
        assert PROFILE_DNA.validate_symbol((0.25, 0.25, 0.25, 0.25, 0.0))
        assert not PROFILE_DNA.validate_symbol((1.0,))

    def test_validate_numeric(self):
        assert INT_SIGNAL.validate_symbol(200)

    def test_registry(self):
        assert STANDARD_ALPHABETS["dna"] is DNA
        assert STANDARD_ALPHABETS["dna_gap"] is DNA_WITH_GAP
        assert STANDARD_ALPHABETS["protein"] is PROTEIN
