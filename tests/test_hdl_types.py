"""Unit and property tests for the ap_int / ap_fixed emulation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hdl_types import (
    ApFixedType,
    ApIntType,
    Overflow,
    Rounding,
    ap_int,
    ap_uint,
    bits_for_range,
    bits_for_states,
)


class TestApIntRange:
    def test_signed_bounds(self):
        t = ap_int(8)
        assert t.min_value == -128
        assert t.max_value == 127

    def test_unsigned_bounds(self):
        t = ap_uint(8)
        assert t.min_value == 0
        assert t.max_value == 255

    def test_one_bit_unsigned(self):
        t = ap_uint(1)
        assert (t.min_value, t.max_value) == (0, 1)

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            ApIntType(0)

    def test_in_range(self):
        t = ap_int(4)
        assert t.in_range(-8) and t.in_range(7)
        assert not t.in_range(8) and not t.in_range(-9)


class TestApIntQuantize:
    def test_identity_in_range(self):
        t = ap_int(16)
        assert t.quantize(1234) == 1234
        assert t.quantize(-1234) == -1234

    def test_wrap_positive_overflow(self):
        t = ap_int(8)
        assert t.quantize(128) == -128  # two's complement wrap

    def test_wrap_negative_overflow(self):
        t = ap_int(8)
        assert t.quantize(-129) == 127

    def test_saturate(self):
        t = ApIntType(8, signed=True, overflow=Overflow.SATURATE)
        assert t.quantize(1000) == 127
        assert t.quantize(-1000) == -128

    def test_unsigned_wrap(self):
        t = ap_uint(8)
        assert t.quantize(256) == 0
        assert t.quantize(-1) == 255

    @given(st.integers(min_value=-(10**9), max_value=10**9))
    def test_wrap_matches_modular_arithmetic(self, value):
        t = ap_int(12)
        wrapped = t.quantize(value)
        assert t.in_range(wrapped)
        assert (wrapped - value) % (1 << 12) == 0

    @given(st.integers(min_value=-(10**9), max_value=10**9))
    def test_quantize_idempotent(self, value):
        t = ap_int(10)
        once = t.quantize(value)
        assert t.quantize(once) == once

    def test_sentinels_survive_one_more_op(self):
        t = ap_int(16)
        assert t.in_range(t.sentinel_low() - 100)
        assert t.in_range(t.sentinel_high() + 100)


class TestApFixed:
    def test_resolution(self):
        t = ApFixedType(16, 8)
        assert t.resolution == 1 / 256

    def test_quantize_snaps_to_grid(self):
        t = ApFixedType(16, 8)
        v = t.quantize(1.30078125)  # exactly on the 1/256 grid
        assert v == 1.30078125
        snapped = t.quantize(1.3000001)
        assert abs(snapped - 1.3) < t.resolution

    def test_range(self):
        t = ApFixedType(8, 4)
        assert t.max_value == 7.9375
        assert t.min_value == -8.0

    def test_saturation_default(self):
        t = ApFixedType(8, 4)
        assert t.quantize(1000.0) == t.max_value
        assert t.quantize(-1000.0) == t.min_value

    def test_raw_roundtrip(self):
        t = ApFixedType(16, 8)
        assert t.from_raw(t.to_raw(2.5)) == 2.5

    def test_invalid_int_width(self):
        with pytest.raises(ValueError):
            ApFixedType(8, 9)

    @given(st.floats(min_value=-100, max_value=100, allow_nan=False))
    def test_quantize_error_bounded(self, value):
        t = ApFixedType(24, 12)
        q = t.quantize(value)
        assert abs(q - value) <= t.resolution / 2 + 1e-12

    @given(st.floats(min_value=-100, max_value=100, allow_nan=False))
    def test_quantize_idempotent(self, value):
        t = ApFixedType(24, 12)
        once = t.quantize(value)
        assert t.quantize(once) == once


class TestRoundingModes:
    def test_truncate_floors(self):
        t = ApFixedType(16, 8, rounding=Rounding.TRUNCATE)
        assert t.quantize(1.999) == 1.99609375     # floor to the grid
        assert t.quantize(-1.001) == -1.00390625   # toward -inf

    def test_round_nearest(self):
        t = ApFixedType(16, 8, rounding=Rounding.ROUND)
        assert t.quantize(1.999) == 2.0

    def test_truncate_never_above_value(self):
        t = ApFixedType(16, 8, rounding=Rounding.TRUNCATE)
        for value in (0.123, 3.7, -2.6, 0.0):
            assert t.quantize(value) <= value

    @given(st.floats(min_value=-100, max_value=100, allow_nan=False))
    def test_truncate_error_bounded_one_lsb(self, value):
        t = ApFixedType(24, 12, rounding=Rounding.TRUNCATE)
        q = t.quantize(value)
        assert value - t.resolution <= q <= value + 1e-12

    def test_truncate_idempotent(self):
        t = ApFixedType(16, 8, rounding=Rounding.TRUNCATE)
        once = t.quantize(3.1415)
        assert t.quantize(once) == once


class TestWidthHelpers:
    @pytest.mark.parametrize(
        "n,bits", [(1, 1), (2, 1), (3, 2), (4, 2), (5, 3), (16, 4), (17, 5)]
    )
    def test_bits_for_states(self, n, bits):
        assert bits_for_states(n) == bits

    def test_bits_for_states_invalid(self):
        with pytest.raises(ValueError):
            bits_for_states(0)

    @pytest.mark.parametrize(
        "low,high,bits",
        [(0, 1, 1), (0, 255, 8), (0, 256, 9), (-1, 0, 1), (-128, 127, 8),
         (-129, 0, 9), (0, 0, 1)],
    )
    def test_bits_for_range(self, low, high, bits):
        assert bits_for_range(low, high) == bits

    def test_bits_for_range_empty(self):
        with pytest.raises(ValueError):
            bits_for_range(5, 4)

    @given(st.integers(-10**6, 10**6), st.integers(-10**6, 10**6))
    def test_bits_for_range_represents_endpoints(self, a, b):
        low, high = min(a, b), max(a, b)
        width = bits_for_range(low, high)
        if low >= 0:
            assert high <= (1 << width) - 1
        else:
            assert -(1 << (width - 1)) <= low
            assert high <= (1 << (width - 1)) - 1
